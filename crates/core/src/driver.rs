//! The multi-partition ALEX driver (paper §3.2, §6.2, §7).
//!
//! The driver partitions the left dataset round-robin, builds one
//! [`ExplorationSpace`] and [`PartitionEngine`] per partition (in
//! parallel), then alternates policy-evaluation/policy-improvement
//! episodes until convergence: strictly when the candidate set stops
//! changing, relaxed when fewer than 5% of links change (§3.2), or at the
//! episode cap.
//!
//! Feedback is "directed to all partitions" (§6.2): each episode's budget
//! of feedback items is split across partitions proportionally to their
//! candidate counts, and partitions run concurrently on OS threads — the
//! paper's 27-partition parallelism scaled to the local machine.

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use alex_rdf::{IriId, Link, Store};
use alex_sim::{CacheStats, SimCache};

use crate::config::AlexConfig;
use crate::engine::{EngineDiagnostics, PartitionEngine, PartitionEpisodeStats};
use crate::metrics::{EpisodeReport, Quality};
use crate::oracle::FeedbackOracle;
use crate::parallel::Executor;
use crate::partition::round_robin;
use crate::space::{ExplorationSpace, DEFAULT_MAX_BLOCK};

/// Observability for the pre-processing stage: how long the exploration
/// spaces took to build and how the shared similarity cache performed.
#[derive(Clone, Copy, Debug, Default)]
pub struct SpaceBuildStats {
    /// Wall-clock seconds spent building all partition spaces.
    pub seconds: f64,
    /// Pairs that survived the θ filter, summed over partitions.
    pub pairs: usize,
    /// Worker threads the build ran with.
    pub threads: usize,
    /// Similarity-cache hit/miss counters for the whole build.
    pub cache: CacheStats,
}

/// Everything a finished ALEX run reports.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Global per-episode reports; index 0 is the pre-feedback baseline.
    pub reports: Vec<EpisodeReport>,
    /// Episode at which the candidate set stopped changing entirely.
    pub strict_convergence: Option<usize>,
    /// First episode at which fewer than the configured fraction of links
    /// changed (the paper's vertical green line).
    pub relaxed_convergence: Option<usize>,
    /// Final candidate links.
    pub final_links: HashSet<Link>,
    /// Per-partition quality curves (for Figure 7(b)/(c)), indexed
    /// `[partition][episode]`.
    pub partition_reports: Vec<Vec<EpisodeReport>>,
    /// Total wall-clock milliseconds each partition spent across episodes;
    /// `max` is the paper's "execution time of the slowest partition".
    pub partition_durations_ms: Vec<f64>,
}

impl RunOutcome {
    /// The final quality reached.
    pub fn final_quality(&self) -> Quality {
        self.reports
            .last()
            .expect("reports always contain the baseline")
            .quality
    }

    /// Execution time of the slowest partition, in milliseconds (§7.3).
    pub fn slowest_partition_ms(&self) -> f64 {
        self.partition_durations_ms
            .iter()
            .copied()
            .fold(0.0, f64::max)
    }

    /// Mean partition execution time, in milliseconds (§7.3).
    pub fn average_partition_ms(&self) -> f64 {
        if self.partition_durations_ms.is_empty() {
            0.0
        } else {
            self.partition_durations_ms.iter().sum::<f64>()
                / self.partition_durations_ms.len() as f64
        }
    }
}

/// The orchestrator owning every partition engine.
pub struct AlexDriver {
    engines: Vec<PartitionEngine>,
    /// Left entity → owning partition, used to route links and restrict
    /// ground truth per partition.
    owner: HashMap<IriId, usize>,
    cfg: AlexConfig,
    build_stats: SpaceBuildStats,
}

impl AlexDriver {
    /// Builds spaces and engines for `cfg.partitions` partitions of the
    /// left dataset against the whole right dataset, and distributes
    /// `initial_links` (the automatic linker's output) to their owning
    /// partitions. Pass the *larger* dataset as `left` for best parallelism,
    /// as the paper partitions the larger side.
    ///
    /// Returns `Err` when the configuration is invalid.
    pub fn new(
        left: &Store,
        right: &Store,
        initial_links: &[Link],
        cfg: AlexConfig,
    ) -> Result<Self, String> {
        Self::new_with_state(left, right, initial_links, &[], cfg)
    }

    /// Like [`AlexDriver::new`], but additionally preloads a blacklist —
    /// used when restoring a persisted session
    /// ([`crate::SessionSnapshot::restore`]).
    pub fn new_with_state(
        left: &Store,
        right: &Store,
        initial_links: &[Link],
        blacklist: &[Link],
        cfg: AlexConfig,
    ) -> Result<Self, String> {
        cfg.validate()?;
        let subjects: Vec<IriId> = left.subjects().collect();
        let parts = round_robin(&subjects, cfg.partitions);
        let owner: HashMap<IriId, usize> = parts
            .iter()
            .enumerate()
            .flat_map(|(k, p)| p.iter().map(move |&s| (s, k)))
            .collect();

        // Build partition spaces one after another, each parallelized
        // internally over its subjects (one executor, so the machine is
        // never oversubscribed) and sharing one similarity cache — entities
        // in different partitions repeat the same literals.
        let executor = Executor::resolve(cfg.threads);
        let cache = SimCache::new(cfg.sim);
        let build_start = Instant::now();
        let build_span = alex_trace::span("driver.space_build");
        let spaces: Vec<ExplorationSpace> = parts
            .iter()
            .map(|p| {
                ExplorationSpace::build_with(
                    left,
                    right,
                    p,
                    cfg.theta,
                    DEFAULT_MAX_BLOCK,
                    &executor,
                    &cache,
                )
            })
            .collect();
        drop(build_span);
        let build_stats = SpaceBuildStats {
            seconds: build_start.elapsed().as_secs_f64(),
            pairs: spaces.iter().map(|s| s.len()).sum(),
            threads: executor.workers(),
            cache: cache.stats(),
        };

        // Route initial links to their owning partition; links whose left
        // entity is unknown to the left dataset go to partition 0 so they
        // still count for metrics and can receive (negative) feedback.
        let mut per_partition: Vec<Vec<Link>> = vec![Vec::new(); cfg.partitions];
        for &l in initial_links {
            let k = owner.get(&l.left).copied().unwrap_or(0);
            per_partition[k].push(l);
        }

        let mut engines: Vec<PartitionEngine> = spaces
            .into_iter()
            .zip(per_partition)
            .enumerate()
            .map(|(k, (space, links))| {
                let seed = cfg.seed ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let mut e = PartitionEngine::new(space, links, cfg.clone(), seed);
                e.set_trace_identity(k, left.interner().clone());
                e
            })
            .collect();
        for &l in blacklist {
            let k = owner.get(&l.left).copied().unwrap_or(0);
            engines[k].preload_blacklist([l]);
        }

        Ok(Self {
            engines,
            owner,
            cfg,
            build_stats,
        })
    }

    /// The driver's configuration.
    pub fn config(&self) -> &AlexConfig {
        &self.cfg
    }

    /// Timing and cache statistics of the exploration-space build.
    pub fn build_stats(&self) -> SpaceBuildStats {
        self.build_stats
    }

    /// Read access to the partition engines.
    pub fn engines(&self) -> &[PartitionEngine] {
        &self.engines
    }

    /// Mutable access to the partition engines — used when restoring
    /// persisted learning state into a freshly built driver
    /// ([`crate::SessionSnapshot::restore`]).
    pub fn engines_mut(&mut self) -> &mut [PartitionEngine] {
        &mut self.engines
    }

    /// Union of all partitions' candidate links.
    pub fn candidate_links(&self) -> HashSet<Link> {
        let mut out = HashSet::new();
        for e in &self.engines {
            out.extend(e.candidates().iter());
        }
        out
    }

    /// Sum of all partitions' filtered-space sizes.
    pub fn filtered_space_size(&self) -> usize {
        self.engines.iter().map(|e| e.space().len()).sum()
    }

    /// Sum of all partitions' unfiltered pair counts.
    pub fn total_possible_pairs(&self) -> usize {
        self.engines
            .iter()
            .map(|e| e.space().total_possible())
            .sum()
    }

    fn allot_items(&self) -> Vec<usize> {
        let counts: Vec<usize> = self.engines.iter().map(|e| e.candidates().len()).collect();
        let total: usize = counts.iter().sum();
        if total == 0 {
            return vec![0; counts.len()];
        }
        let budget = self.cfg.episode_size;
        let mut items: Vec<usize> = counts.iter().map(|&c| budget * c / total).collect();
        // Distribute the rounding remainder to the largest partitions.
        let mut assigned: usize = items.iter().sum();
        let mut order: Vec<usize> = (0..counts.len()).collect();
        order.sort_unstable_by_key(|&i| std::cmp::Reverse(counts[i]));
        let mut cursor = 0;
        while assigned < budget && cursor < order.len() {
            let i = order[cursor];
            if counts[i] > 0 {
                items[i] += 1;
                assigned += 1;
            }
            cursor = (cursor + 1) % order.len().max(1);
            if cursor == 0 && counts.iter().all(|&c| c == 0) {
                break;
            }
        }
        items
    }

    /// Ground truth restricted to links owned by partition `k`.
    fn partition_truth(&self, truth: &HashSet<Link>, k: usize) -> HashSet<Link> {
        truth
            .iter()
            .filter(|l| self.owner.get(&l.left).copied().unwrap_or(0) == k)
            .copied()
            .collect()
    }

    /// Processes one interactive feedback item (Figure 1's answer
    /// feedback), routing the link to the partition that owns its left
    /// entity — links whose left entity is unknown go to partition 0, the
    /// same rule [`AlexDriver::new`] uses to place initial links.
    ///
    /// Call [`AlexDriver::end_episode`] after a batch of feedback to run
    /// policy improvement; [`AlexDriver::run`] and [`AlexDriver::step`]
    /// do this internally.
    pub fn process_feedback(&mut self, link: Link, positive: bool) {
        let k = self.owner.get(&link.left).copied().unwrap_or(0);
        self.engines[k].process_feedback(link, positive);
    }

    /// Ends the current interactive episode on every partition (ε-greedy
    /// policy improvement at each visited state), returning the aggregated
    /// counters for feedback processed since the last episode boundary.
    pub fn end_episode(&mut self) -> PartitionEpisodeStats {
        let mut totals = PartitionEpisodeStats::default();
        for e in &mut self.engines {
            totals.merge(&e.end_episode());
        }
        totals
    }

    /// Aggregated learning-state diagnostics across all partitions.
    pub fn diagnostics(&self) -> EngineDiagnostics {
        let mut out = EngineDiagnostics::default();
        for e in &self.engines {
            out.merge(&e.diagnostics());
        }
        out
    }

    /// Runs exactly one policy-evaluation/policy-improvement episode across
    /// all partitions (in parallel), without convergence checks or metric
    /// computation — the building block for interactive deployments that
    /// interleave curation with their own bookkeeping. Returns the
    /// aggregated episode counters.
    pub fn step(&mut self, oracle: &dyn FeedbackOracle) -> PartitionEpisodeStats {
        let items = self.allot_items();
        let episode_span = alex_trace::span("rl.episode");
        let ctx = episode_span.ctx();
        let results: Vec<PartitionEpisodeStats> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .engines
                .iter_mut()
                .zip(&items)
                .map(|(e, &count)| {
                    scope.spawn(move || {
                        let _guard = alex_trace::attach(ctx);
                        let _span = alex_trace::span("rl.partition");
                        e.run_episode(count, oracle)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("partition panicked"))
                .collect()
        });
        let mut totals = PartitionEpisodeStats::default();
        for r in &results {
            totals.merge(r);
        }
        totals
    }

    /// Runs episodes until convergence or the episode cap, evaluating
    /// quality against `ground_truth` after every episode.
    pub fn run(&mut self, oracle: &dyn FeedbackOracle, ground_truth: &HashSet<Link>) -> RunOutcome {
        let n = self.engines.len();
        let partition_truths: Vec<HashSet<Link>> = (0..n)
            .map(|k| self.partition_truth(ground_truth, k))
            .collect();

        let mut reports = Vec::new();
        let mut partition_reports: Vec<Vec<EpisodeReport>> = vec![Vec::new(); n];
        let mut partition_durations_ms = vec![0.0; n];

        // Episode 0: the automatic linker's baseline.
        let mut prev = self.candidate_links();
        reports.push(EpisodeReport {
            episode: 0,
            quality: Quality::compute(&prev, ground_truth),
            candidates: prev.len(),
            feedback_items: 0,
            negative_feedback: 0,
            links_added: 0,
            links_removed: 0,
            changed_links: 0,
            duration_ms: 0.0,
        });
        for (k, e) in self.engines.iter().enumerate() {
            let cand = e.candidates().to_set();
            partition_reports[k].push(EpisodeReport {
                episode: 0,
                quality: Quality::compute(&cand, &partition_truths[k]),
                candidates: cand.len(),
                feedback_items: 0,
                negative_feedback: 0,
                links_added: 0,
                links_removed: 0,
                changed_links: 0,
                duration_ms: 0.0,
            });
        }

        let mut strict = None;
        let mut relaxed = None;
        let mut prev_per_partition: Vec<HashSet<Link>> = self
            .engines
            .iter()
            .map(|e| e.candidates().to_set())
            .collect();

        for episode in 1..=self.cfg.max_episodes {
            let items = self.allot_items();
            if items.iter().all(|&i| i == 0) {
                break; // nothing left to give feedback on
            }
            let episode_start = Instant::now();
            let episode_span = alex_trace::span("rl.episode");
            let ctx = episode_span.ctx();
            let results: Vec<(PartitionEpisodeStats, f64)> = std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .engines
                    .iter_mut()
                    .zip(&items)
                    .map(|(e, &count)| {
                        scope.spawn(move || {
                            let _guard = alex_trace::attach(ctx);
                            let _span = alex_trace::span("rl.partition");
                            let t = Instant::now();
                            let stats = e.run_episode(count, oracle);
                            (stats, t.elapsed().as_secs_f64() * 1000.0)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("partition panicked"))
                    .collect()
            });
            drop(episode_span);
            let episode_ms = episode_start.elapsed().as_secs_f64() * 1000.0;

            let mut totals = PartitionEpisodeStats::default();
            for (k, (stats, ms)) in results.iter().enumerate() {
                totals.merge(stats);
                partition_durations_ms[k] += ms;
                let cand = self.engines[k].candidates().to_set();
                let changed = cand.symmetric_difference(&prev_per_partition[k]).count();
                partition_reports[k].push(EpisodeReport {
                    episode,
                    quality: Quality::compute(&cand, &partition_truths[k]),
                    candidates: cand.len(),
                    feedback_items: stats.feedback_items,
                    negative_feedback: stats.negative_feedback,
                    links_added: stats.links_added,
                    links_removed: stats.links_removed,
                    changed_links: changed,
                    duration_ms: *ms,
                });
                prev_per_partition[k] = cand;
            }

            let current = self.candidate_links();
            let changed = current.symmetric_difference(&prev).count();
            reports.push(EpisodeReport {
                episode,
                quality: Quality::compute(&current, ground_truth),
                candidates: current.len(),
                feedback_items: totals.feedback_items,
                negative_feedback: totals.negative_feedback,
                links_added: totals.links_added,
                links_removed: totals.links_removed,
                changed_links: changed,
                duration_ms: episode_ms,
            });

            if relaxed.is_none()
                && (changed as f64) < self.cfg.relaxed_convergence * current.len().max(1) as f64
            {
                relaxed = Some(episode);
                if self.cfg.stop_at_relaxed {
                    prev = current;
                    break;
                }
            }
            if changed == 0 {
                strict = Some(episode);
                prev = current;
                break;
            }
            prev = current;
        }

        RunOutcome {
            reports,
            strict_convergence: strict,
            relaxed_convergence: relaxed,
            final_links: prev,
            partition_reports,
            partition_durations_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ExactOracle;
    use alex_rdf::{Interner, Literal};

    /// Builds a pair of datasets with `n` matching entities and some decoys,
    /// returning stores, ground truth, and a degraded initial link set.
    fn world(n: usize) -> (Store, Store, HashSet<Link>, Vec<Link>) {
        let interner = Interner::new_shared();
        let mut left = Store::new(interner.clone());
        let mut right = Store::new(interner.clone());
        let name_l = left.intern_iri("l/name");
        let year_l = left.intern_iri("l/year");
        let name_r = right.intern_iri("r/label");
        let year_r = right.intern_iri("r/born");
        let mut truth = HashSet::new();
        let mut links = Vec::new();
        for i in 0..n {
            let ls = left.intern_iri(&format!("l/e{i}"));
            let rs = right.intern_iri(&format!("r/e{i}"));
            let nm = format!("entity alpha {i}");
            left.insert_literal(ls, name_l, Literal::str(&interner, &nm));
            left.insert_literal(ls, year_l, Literal::Integer(1900 + i as i64));
            right.insert_literal(rs, name_r, Literal::str(&interner, &nm));
            right.insert_literal(rs, year_r, Literal::Integer(1900 + i as i64));
            let link = Link::new(ls, rs);
            truth.insert(link);
            links.push(link);
        }
        (left, right, truth, links)
    }

    fn small_cfg() -> AlexConfig {
        AlexConfig {
            episode_size: 100,
            partitions: 3,
            max_episodes: 30,
            ..Default::default()
        }
    }

    #[test]
    fn recovers_missing_links_and_converges() {
        let (left, right, truth, links) = world(20);
        // Start with only a quarter of the true links: bad recall.
        let initial: Vec<Link> = links.iter().take(5).copied().collect();
        let mut driver = AlexDriver::new(&left, &right, &initial, small_cfg()).unwrap();
        let oracle = ExactOracle::new(truth.clone());
        let out = driver.run(&oracle, &truth);

        let q0 = out.reports[0].quality;
        let qn = out.final_quality();
        assert!(q0.recall <= 0.25 + 1e-9);
        assert!(
            qn.recall > q0.recall,
            "recall must improve: {q0:?} -> {qn:?}"
        );
        assert!(qn.f1 > 0.8, "final F1 {qn:?}");
        assert!(out.strict_convergence.is_some() || out.reports.len() > 30);
    }

    #[test]
    fn removes_wrong_links() {
        let (left, right, truth, links) = world(12);
        // All true links plus wrong cross pairs: bad precision.
        let mut initial = links.clone();
        for i in 0..6 {
            initial.push(Link::new(links[i].left, links[(i + 1) % 12].right));
        }
        let mut driver = AlexDriver::new(&left, &right, &initial, small_cfg()).unwrap();
        let oracle = ExactOracle::new(truth.clone());
        let out = driver.run(&oracle, &truth);
        let q0 = out.reports[0].quality;
        let qn = out.final_quality();
        assert!(q0.precision < 0.7);
        assert!(
            qn.precision > q0.precision,
            "precision must improve: {q0:?} -> {qn:?}"
        );
    }

    #[test]
    fn empty_initial_links_is_graceful() {
        let (left, right, truth, _) = world(5);
        let mut driver = AlexDriver::new(&left, &right, &[], small_cfg()).unwrap();
        let oracle = ExactOracle::new(truth.clone());
        let out = driver.run(&oracle, &truth);
        // No candidates, no feedback, immediate stop at the baseline report.
        assert_eq!(out.reports.len(), 1);
        assert!(out.final_links.is_empty());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let (left, right, _, _) = world(3);
        let bad = AlexConfig {
            partitions: 0,
            ..Default::default()
        };
        assert!(AlexDriver::new(&left, &right, &[], bad).is_err());
    }

    #[test]
    fn partition_reports_cover_all_partitions() {
        let (left, right, truth, links) = world(10);
        let mut driver = AlexDriver::new(&left, &right, &links[..3], small_cfg()).unwrap();
        let oracle = ExactOracle::new(truth.clone());
        let out = driver.run(&oracle, &truth);
        assert_eq!(out.partition_reports.len(), 3);
        for pr in &out.partition_reports {
            assert_eq!(pr[0].episode, 0);
            assert_eq!(pr.len(), out.reports.len());
        }
        assert_eq!(out.partition_durations_ms.len(), 3);
        assert!(out.slowest_partition_ms() >= out.average_partition_ms());
    }

    #[test]
    fn deterministic_under_fixed_seed_single_partition() {
        // With one partition there is no cross-thread scheduling, so two
        // runs with the same seed must be identical.
        let (left, right, truth, links) = world(15);
        let cfg = AlexConfig {
            partitions: 1,
            episode_size: 60,
            max_episodes: 10,
            ..Default::default()
        };
        let run = |cfg: AlexConfig| {
            let mut d = AlexDriver::new(&left, &right, &links[..4], cfg).unwrap();
            let oracle = ExactOracle::new(truth.clone());
            let out = d.run(&oracle, &truth);
            (
                out.reports
                    .iter()
                    .map(|r| (r.candidates, r.links_added))
                    .collect::<Vec<_>>(),
                out.final_links,
            )
        };
        let (r1, f1) = run(cfg.clone());
        let (r2, f2) = run(cfg);
        assert_eq!(r1, r2);
        assert_eq!(f1, f2);
    }

    #[test]
    fn allot_items_is_proportional_and_exact() {
        let (left, right, _, links) = world(12);
        let cfg = AlexConfig {
            partitions: 3,
            episode_size: 90,
            ..Default::default()
        };
        let driver = AlexDriver::new(&left, &right, &links, cfg).unwrap();
        let items = driver.allot_items();
        assert_eq!(items.len(), 3);
        assert_eq!(items.iter().sum::<usize>(), 90, "budget fully assigned");
        // Proportionality: partitions hold 4 links each → equal share.
        for (k, &i) in items.iter().enumerate() {
            assert!((28..=32).contains(&i), "partition {k} got {i}");
        }
    }

    #[test]
    fn allot_items_skips_empty_partitions() {
        let (left, right, _, links) = world(9);
        // Seed only one link: its partition gets the whole budget.
        let cfg = AlexConfig {
            partitions: 3,
            episode_size: 30,
            ..Default::default()
        };
        let driver = AlexDriver::new(&left, &right, &links[..1], cfg).unwrap();
        let items = driver.allot_items();
        assert_eq!(items.iter().sum::<usize>(), 30);
        assert_eq!(items.iter().filter(|&&i| i > 0).count(), 1);
    }

    #[test]
    fn allot_items_zero_when_no_candidates() {
        let (left, right, _, _) = world(5);
        let cfg = AlexConfig {
            partitions: 2,
            ..Default::default()
        };
        let driver = AlexDriver::new(&left, &right, &[], cfg).unwrap();
        assert!(driver.allot_items().iter().all(|&i| i == 0));
    }

    #[test]
    fn filtered_space_and_total_pairs_counts() {
        let (left, right, _, links) = world(8);
        let cfg = AlexConfig {
            partitions: 2,
            ..Default::default()
        };
        let driver = AlexDriver::new(&left, &right, &links, cfg).unwrap();
        assert_eq!(driver.total_possible_pairs(), 8 * 8);
        assert!(
            driver.filtered_space_size() >= 8,
            "true pairs survive the filter"
        );
        assert!(driver.filtered_space_size() <= driver.total_possible_pairs());
    }

    #[test]
    fn step_runs_one_episode_and_diagnostics_track_it() {
        let (left, right, truth, links) = world(10);
        let cfg = AlexConfig {
            partitions: 2,
            episode_size: 30,
            ..Default::default()
        };
        let mut driver = AlexDriver::new(&left, &right, &links[..3], cfg).unwrap();
        let d0 = driver.diagnostics();
        assert_eq!(d0.candidates, 3);
        assert_eq!(d0.q_entries, 0);
        let oracle = crate::oracle::ExactOracle::new(truth.clone());
        let stats = driver.step(&oracle);
        assert!(stats.feedback_items > 0);
        assert!(stats.feedback_items <= 30);
        let d1 = driver.diagnostics();
        assert!(
            d1.candidates >= d0.candidates,
            "exploration should not shrink a clean set"
        );
        // Stepping twice more keeps making progress without panicking.
        driver.step(&oracle);
        driver.step(&oracle);
        let q = crate::metrics::Quality::compute(&driver.candidate_links(), &truth);
        assert!(q.recall >= 0.3);
    }

    #[test]
    fn interactive_feedback_is_routed_and_episode_aggregated() {
        let (left, right, _, links) = world(9);
        let cfg = AlexConfig {
            partitions: 3,
            epsilon: 0.0,
            ..Default::default()
        };
        let mut driver = AlexDriver::new(&left, &right, &links[..3], cfg).unwrap();
        let before = driver.candidate_links();
        assert!(before.contains(&links[0]));

        // Reject one link, approve another; feedback lands on different
        // partitions (round-robin ownership) and must still take effect.
        driver.process_feedback(links[0], false);
        driver.process_feedback(links[1], true);
        let stats = driver.end_episode();
        assert_eq!(stats.feedback_items, 2);
        assert_eq!(stats.negative_feedback, 1);

        let after = driver.candidate_links();
        assert!(!after.contains(&links[0]), "rejected link is removed");
        assert!(after.contains(&links[1]), "approved link stays");
        // Exploration around the approved (identical-name) link discovers
        // more pairs, so the set grows despite the removal.
        assert!(
            stats.links_added > 0,
            "approval triggers exploration: {stats:?}"
        );

        // A second end_episode with no feedback in between is a no-op.
        let idle = driver.end_episode();
        assert_eq!(idle, PartitionEpisodeStats::default());
    }

    #[test]
    fn feedback_on_foreign_link_is_graceful() {
        let (left, right, _, links) = world(4);
        let cfg = AlexConfig {
            partitions: 2,
            ..Default::default()
        };
        let mut driver = AlexDriver::new(&left, &right, &links, cfg).unwrap();
        // A link whose left entity the left dataset never saw: routed to
        // partition 0, processed without panicking.
        let foreign = Link::new(alex_rdf::IriId(alex_rdf::StrId(u32::MAX)), links[0].right);
        driver.process_feedback(foreign, false);
        let stats = driver.end_episode();
        assert_eq!(stats.feedback_items, 1);
    }

    #[test]
    fn tracing_records_audit_trail_without_changing_output() {
        use alex_trace::{Payload, TraceMode, TraceSettings};
        // Single partition + fixed seed: identical runs are bit-identical,
        // so any divergence with tracing on would be tracing's fault.
        let (left, right, truth, links) = world(15);
        let cfg = AlexConfig {
            partitions: 1,
            episode_size: 60,
            max_episodes: 5,
            ..Default::default()
        };
        let run = |cfg: AlexConfig| {
            let mut d = AlexDriver::new(&left, &right, &links[..4], cfg).unwrap();
            let oracle = ExactOracle::new(truth.clone());
            d.run(&oracle, &truth).final_links
        };
        let baseline = run(cfg.clone());

        alex_trace::configure(&TraceSettings {
            mode: TraceMode::Ring,
            sample: 1.0,
            ring_capacity: 1 << 16,
        })
        .unwrap();
        let span = alex_trace::root_span("test.traced_run");
        let trace_id = span.trace_id();
        let traced = run(cfg);
        drop(span);
        let events = alex_trace::recorder().trace_events(trace_id);
        alex_trace::configure(&TraceSettings::default()).unwrap();

        assert_eq!(baseline, traced, "tracing must not change link output");
        let has = |pred: &dyn Fn(&Payload) -> bool| events.iter().any(|e| pred(&e.payload));
        assert!(has(&|p| matches!(p, Payload::Feedback { .. })));
        assert!(has(&|p| matches!(p, Payload::LinkAdded { .. })));
        assert!(has(&|p| matches!(p, Payload::EpisodeEnd { .. })));
        // The decision audit trail: every choice carries ε, the explored
        // flag, and a resolvable feature rendered from the interner.
        let decision = events
            .iter()
            .find_map(|e| match &e.payload {
                Payload::Decision {
                    epsilon, chosen, ..
                } => Some((*epsilon, chosen.clone())),
                _ => None,
            })
            .expect("at least one decision event");
        assert_eq!(decision.0, 0.1);
        assert!(
            decision.1.contains('\t') && decision.1.contains("l/"),
            "feature rendered as IRI pair: {:?}",
            decision.1
        );
        // Span taxonomy covers the build and the episodes.
        for name in ["space.build", "rl.episode", "rl.partition"] {
            assert!(
                has(&|p| matches!(p, Payload::SpanStart { name: n } if n == name)),
                "missing span {name}"
            );
        }
    }

    #[test]
    fn stop_at_relaxed_halts_earlier_or_equal() {
        let (left, right, truth, links) = world(20);
        let initial: Vec<Link> = links.iter().take(5).copied().collect();
        let strict_cfg = small_cfg();
        let relaxed_cfg = AlexConfig {
            stop_at_relaxed: true,
            ..small_cfg()
        };
        let oracle = ExactOracle::new(truth.clone());
        let mut d1 = AlexDriver::new(&left, &right, &initial, strict_cfg).unwrap();
        let out1 = d1.run(&oracle, &truth);
        let mut d2 = AlexDriver::new(&left, &right, &initial, relaxed_cfg).unwrap();
        let out2 = d2.run(&oracle, &truth);
        assert!(out2.reports.len() <= out1.reports.len());
    }
}
