//! A chunked work-splitting executor for deterministic data parallelism.
//!
//! The dominant costs in ALEX — building exploration spaces, the PARIS
//! fixpoint, blocking — are embarrassingly parallel *maps* over pair
//! lists. This module provides the one primitive they all share:
//! [`Executor::map_chunks`], which splits a slice into contiguous chunks,
//! runs a closure over the chunks on scoped OS threads, and returns the
//! per-chunk results **in input order**. Callers then merge the chunk
//! results with a serial, order-preserving reduce, which is what makes
//! the parallel output bit-identical to the serial one: every float is
//! computed from the same operands in the same order, only *which thread*
//! computes it changes.
//!
//! Worker count resolution (highest precedence first):
//!
//! 1. the `ALEX_THREADS` environment variable (≥ 1);
//! 2. an explicit configuration value (e.g. [`crate::AlexConfig::threads`])
//!    when non-zero;
//! 3. [`std::thread::available_parallelism`].
//!
//! `ALEX_THREADS=1` therefore forces the serial path everywhere and is
//! the oracle the property tests compare parallel runs against.
//!
//! No external dependencies: scheduling is a shared atomic chunk cursor
//! over [`std::thread::scope`] threads (threads steal the next unclaimed
//! chunk, so an unlucky expensive chunk does not serialize the rest).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding every configured worker count.
pub const THREADS_ENV: &str = "ALEX_THREADS";

/// Resolves the effective worker count from the environment, a configured
/// value (`0` = unset), and the machine's available parallelism.
pub fn resolve_workers(configured: usize) -> usize {
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    effective_workers(
        std::env::var(THREADS_ENV).ok().as_deref(),
        configured,
        available,
    )
}

/// Pure precedence logic behind [`resolve_workers`], factored out so tests
/// need not mutate process-global environment variables (racy under a
/// multi-threaded test harness).
fn effective_workers(env: Option<&str>, configured: usize, available: usize) -> usize {
    if let Some(v) = env {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    if configured > 0 {
        return configured;
    }
    available.max(1)
}

/// A fixed-width work-splitting executor over scoped threads.
///
/// Cheap to construct (it owns nothing but a worker count); share one per
/// pipeline so stages agree on their parallelism.
#[derive(Clone, Debug)]
pub struct Executor {
    workers: usize,
}

impl Executor {
    /// An executor with exactly `workers` threads (clamped to ≥ 1).
    /// `Executor::new(1)` runs every map inline on the calling thread —
    /// the serial reference path.
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }

    /// An executor honoring `ALEX_THREADS`, then `configured` (0 = unset),
    /// then available parallelism — see [`resolve_workers`].
    pub fn resolve(configured: usize) -> Self {
        Self::new(resolve_workers(configured))
    }

    /// The worker count this executor was built with.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Splits `items` into contiguous chunks, applies `f` to each chunk
    /// (in parallel when `workers > 1`), and returns the chunk results in
    /// input order.
    ///
    /// Chunk boundaries are deterministic for a given `(len, workers)`;
    /// with `workers == 1` the whole slice is one chunk evaluated inline,
    /// so `map_chunks` degenerates to `vec![f(items)]`. Callers must merge
    /// chunk results with an order-preserving serial reduce to keep output
    /// bit-identical across worker counts.
    pub fn map_chunks<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&[T]) -> R + Sync,
    {
        if items.is_empty() {
            return Vec::new();
        }
        if self.workers == 1 {
            return vec![f(items)];
        }
        // More chunks than workers smooths out skewed chunk costs; the
        // atomic cursor lets fast threads steal what's left. Sizes are
        // balanced to within one element (a fixed ceil size would push
        // trailing chunk offsets past the end of short inputs).
        let n_chunks = (self.workers * 4).min(items.len());
        let base = items.len() / n_chunks;
        let rem = items.len() % n_chunks;
        let mut bounds: Vec<(usize, usize)> = Vec::with_capacity(n_chunks);
        let mut lo = 0;
        for i in 0..n_chunks {
            let hi = lo + base + usize::from(i < rem);
            bounds.push((lo, hi));
            lo = hi;
        }
        debug_assert_eq!(lo, items.len());
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = (0..n_chunks).map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for _ in 0..self.workers.min(n_chunks) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n_chunks {
                        break;
                    }
                    let (lo, hi) = bounds[i];
                    let r = f(&items[lo..hi]);
                    *slots[i].lock().expect("result slot poisoned") = Some(r);
                });
            }
        });

        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot poisoned")
                    .expect("every chunk was claimed and computed")
            })
            .collect()
    }
}

impl Default for Executor {
    /// Equivalent to [`Executor::resolve`]`(0)`.
    fn default() -> Self {
        Self::resolve(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence_env_config_available() {
        // Env wins over everything.
        assert_eq!(effective_workers(Some("3"), 8, 16), 3);
        assert_eq!(effective_workers(Some(" 2 "), 0, 16), 2);
        // Invalid or sub-1 env falls through to config.
        assert_eq!(effective_workers(Some("zero"), 5, 16), 5);
        assert_eq!(effective_workers(Some("0"), 5, 16), 5);
        // No env: config when non-zero, else available parallelism.
        assert_eq!(effective_workers(None, 7, 16), 7);
        assert_eq!(effective_workers(None, 0, 16), 16);
        assert_eq!(effective_workers(None, 0, 0), 1);
    }

    #[test]
    fn new_clamps_to_one() {
        assert_eq!(Executor::new(0).workers(), 1);
        assert_eq!(Executor::new(5).workers(), 5);
    }

    #[test]
    fn map_chunks_empty_input() {
        let ex = Executor::new(4);
        let out: Vec<usize> = ex.map_chunks(&[] as &[u32], |c| c.len());
        assert!(out.is_empty());
    }

    #[test]
    fn map_chunks_preserves_order_and_coverage() {
        let items: Vec<u64> = (0..1000).collect();
        for workers in [1, 2, 3, 4, 9] {
            let ex = Executor::new(workers);
            let chunks: Vec<Vec<u64>> = ex.map_chunks(&items, |c| c.to_vec());
            let flat: Vec<u64> = chunks.into_iter().flatten().collect();
            assert_eq!(flat, items, "workers={workers}");
        }
    }

    #[test]
    fn serial_and_parallel_chunk_sums_agree() {
        let items: Vec<f64> = (0..513).map(|i| (i as f64).sin()).collect();
        let total = |chunks: Vec<f64>| chunks.into_iter().sum::<f64>();
        // Per-chunk sums differ between worker counts (different chunk
        // boundaries), but an order-preserving reduce that replays items
        // one by one is identical — this mirrors how callers merge.
        let serial: f64 = items.iter().sum();
        for workers in [1, 2, 4] {
            let ex = Executor::new(workers);
            let replayed = total(
                ex.map_chunks(&items, |c| c.to_vec())
                    .into_iter()
                    .map(|chunk| chunk.into_iter().sum::<f64>())
                    .collect(),
            );
            // Same chunking for the same worker count is bit-stable.
            let again = total(
                ex.map_chunks(&items, |c| c.to_vec())
                    .into_iter()
                    .map(|chunk| chunk.into_iter().sum::<f64>())
                    .collect(),
            );
            assert_eq!(replayed.to_bits(), again.to_bits());
            assert!((replayed - serial).abs() < 1e-9);
        }
    }

    #[test]
    fn workers_one_runs_inline_as_single_chunk() {
        let items: Vec<u32> = (0..17).collect();
        let out = Executor::new(1).map_chunks(&items, |c| c.len());
        assert_eq!(out, vec![17]);
    }

    #[test]
    fn short_inputs_cover_every_length() {
        // Regression: a fixed ceil(len / n_chunks) chunk size pushed
        // trailing chunk offsets past the end for lengths just above a
        // multiple of n_chunks (e.g. len 9 with 8 chunks).
        for len in 1usize..70 {
            let items: Vec<usize> = (0..len).collect();
            for workers in [2, 3, 4, 16] {
                let flat: Vec<usize> = Executor::new(workers)
                    .map_chunks(&items, |c| c.to_vec())
                    .into_iter()
                    .flatten()
                    .collect();
                assert_eq!(flat, items, "len={len} workers={workers}");
            }
        }
    }

    #[test]
    fn many_workers_few_items() {
        let items = [1u32, 2, 3];
        let out: Vec<u32> = Executor::new(16)
            .map_chunks(&items, |c| c.iter().sum())
            .into_iter()
            .collect();
        assert_eq!(out.iter().sum::<u32>(), 6);
    }
}
