//! Feature sets: the state representation of ALEX (paper §4.1).
//!
//! A link between entities `E1` and `E2` is represented by a *feature set*:
//! for every pair of predicates `(p1x, p2y)` whose values are similar, the
//! similarity score of those values. The set is built from the full
//! similarity matrix between the two attribute lists — scores below θ are
//! zeroed, then the per-row maxima (if `|E1| > |E2|`, else per-column
//! maxima) are kept, one feature per attribute of the larger entity.

use alex_rdf::{Entity, Interner, IriId, Term};
use alex_sim::{value_similarity, SimCache, SimConfig};

/// A feature identifier: a predicate of the left entity paired with a
/// predicate of the right entity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FeatureKey {
    /// Predicate from the left dataset.
    pub left: IriId,
    /// Predicate from the right dataset.
    pub right: IriId,
}

impl FeatureKey {
    /// Creates a feature key.
    pub fn new(left: IriId, right: IriId) -> Self {
        Self { left, right }
    }
}

/// One feature of a link: a predicate pair and the similarity of their
/// values, in `[θ, 1]`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Feature {
    /// The predicate pair.
    pub key: FeatureKey,
    /// Similarity score of the two attribute values.
    pub score: f64,
}

/// The feature set of a link — ALEX's state representation.
///
/// Invariants: non-empty, every score is `≥ θ` and `≤ 1`, and every key
/// appears at most once.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct FeatureSet {
    features: Vec<Feature>,
}

impl FeatureSet {
    /// Builds the feature set for the pair `(left, right)`.
    ///
    /// Returns `None` when no feature survives the θ filter — such pairs
    /// are dropped from the search space entirely (§6.1).
    pub fn build(
        left: &Entity,
        right: &Entity,
        interner: &Interner,
        sim: &SimConfig,
        theta: f64,
    ) -> Option<Self> {
        Self::build_with_sim(left, right, theta, |a, b| {
            value_similarity(a, b, interner, sim)
        })
    }

    /// Like [`FeatureSet::build`], but computing similarities through a
    /// shared [`SimCache`], so repeated value pairs across candidate links
    /// are scored once. Bit-identical to `build` with the cache's config.
    pub fn build_cached(
        left: &Entity,
        right: &Entity,
        interner: &Interner,
        cache: &SimCache,
        theta: f64,
    ) -> Option<Self> {
        Self::build_with_sim(left, right, theta, |a, b| {
            cache.value_similarity(a, b, interner)
        })
    }

    /// The shared matrix-reduction logic, generic over how a pair of terms
    /// is scored.
    fn build_with_sim(
        left: &Entity,
        right: &Entity,
        theta: f64,
        mut sim: impl FnMut(&Term, &Term) -> f64,
    ) -> Option<Self> {
        if left.is_empty() || right.is_empty() {
            return None;
        }
        // Build the similarity matrix, then reduce along the smaller side:
        // per-row max if the left entity has more attributes, per-column
        // max otherwise (§4.1).
        let row_major = left.arity() >= right.arity();
        let (outer, inner) = if row_major {
            (left, right)
        } else {
            (right, left)
        };

        let mut features: Vec<Feature> = Vec::new();
        for oa in &outer.attributes {
            let mut best: Option<Feature> = None;
            for ia in &inner.attributes {
                let (la, ra) = if row_major { (oa, ia) } else { (ia, oa) };
                let score = sim(&la.object, &ra.object);
                if score < theta {
                    continue;
                }
                let key = FeatureKey::new(la.predicate, ra.predicate);
                if best.is_none_or(|b| score > b.score) {
                    best = Some(Feature { key, score });
                }
            }
            if let Some(f) = best {
                features.push(f);
            }
        }
        if features.is_empty() {
            return None;
        }
        // Deduplicate keys, keeping the best score per key: distinct
        // attributes of the outer entity can elect the same predicate pair.
        features.sort_unstable_by(|a, b| {
            a.key
                .cmp(&b.key)
                .then(b.score.partial_cmp(&a.score).expect("scores are finite"))
        });
        features.dedup_by_key(|f| f.key);
        Some(Self { features })
    }

    /// The features, sorted by key.
    pub fn features(&self) -> &[Feature] {
        &self.features
    }

    /// Number of features — `|A(s)|`, the number of actions available at
    /// this state.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the set is empty (never true for a built set).
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// The score of `key`, if present.
    pub fn score_of(&self, key: FeatureKey) -> Option<f64> {
        self.features
            .binary_search_by(|f| f.key.cmp(&key))
            .ok()
            .map(|i| self.features[i].score)
    }

    /// Iterates over the feature keys (the action space of this state).
    pub fn keys(&self) -> impl Iterator<Item = FeatureKey> + '_ {
        self.features.iter().map(|f| f.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alex_rdf::{Attribute, Interner, Literal, Term};

    fn entity(interner: &Interner, id: &str, attrs: &[(&str, Term)]) -> Entity {
        Entity::new(
            IriId(interner.intern(id)),
            attrs
                .iter()
                .map(|(p, o)| Attribute {
                    predicate: IriId(interner.intern(p)),
                    object: *o,
                })
                .collect(),
        )
    }

    fn setup() -> (std::sync::Arc<Interner>, SimConfig) {
        (Interner::new_shared(), SimConfig::default())
    }

    #[test]
    fn builds_paper_example_shape() {
        let (i, sim) = setup();
        // E1 = {(label, "LeBron James"), (birth, 1984), (age, 29)}
        // E2 = {(name, "LeBron James"), (year, 1984)}
        let e1 = entity(
            &i,
            "e1",
            &[
                ("label", Literal::str(&i, "LeBron James").into()),
                ("birth", Literal::Integer(1984).into()),
                ("age", Literal::Integer(29).into()),
            ],
        );
        let e2 = entity(
            &i,
            "e2",
            &[
                ("name", Literal::str(&i, "LeBron James").into()),
                ("year", Literal::Integer(1984).into()),
            ],
        );
        let fs = FeatureSet::build(&e1, &e2, &i, &sim, 0.3).unwrap();
        // Row-major (|E1| = 3 > |E2| = 2): one candidate feature per E1 attribute.
        let label = IriId(i.intern("label"));
        let name = IriId(i.intern("name"));
        let birth = IriId(i.intern("birth"));
        let year = IriId(i.intern("year"));
        assert_eq!(fs.score_of(FeatureKey::new(label, name)), Some(1.0));
        assert_eq!(fs.score_of(FeatureKey::new(birth, year)), Some(1.0));
        // age=29 vs year=1984 is < θ; vs name (string) is ~0. So exactly 2 features.
        assert_eq!(fs.len(), 2);
    }

    #[test]
    fn column_major_when_right_is_larger() {
        let (i, sim) = setup();
        let e1 = entity(
            &i,
            "e1",
            &[("label", Literal::str(&i, "Alpha Beta").into())],
        );
        let e2 = entity(
            &i,
            "e2",
            &[
                ("name", Literal::str(&i, "Alpha Beta").into()),
                ("alias", Literal::str(&i, "Alpha B.").into()),
            ],
        );
        let fs = FeatureSet::build(&e1, &e2, &i, &sim, 0.3).unwrap();
        // One feature per E2 attribute: both map onto E1's single label.
        assert_eq!(fs.len(), 2);
        for f in fs.features() {
            assert_eq!(f.key.left, IriId(i.intern("label")));
        }
    }

    #[test]
    fn theta_filters_everything() {
        let (i, sim) = setup();
        let e1 = entity(&i, "e1", &[("p", Literal::str(&i, "xyzxyz").into())]);
        let e2 = entity(&i, "e2", &[("q", Literal::str(&i, "aaabbb").into())]);
        assert!(FeatureSet::build(&e1, &e2, &i, &sim, 0.3).is_none());
        // With θ = 0 even weak similarity survives.
        assert!(FeatureSet::build(&e1, &e2, &i, &sim, 0.0).is_some());
    }

    #[test]
    fn empty_entities_have_no_feature_set() {
        let (i, sim) = setup();
        let e1 = entity(&i, "e1", &[]);
        let e2 = entity(&i, "e2", &[("q", Literal::Integer(1).into())]);
        assert!(FeatureSet::build(&e1, &e2, &i, &sim, 0.3).is_none());
        assert!(FeatureSet::build(&e2, &e1, &i, &sim, 0.3).is_none());
    }

    #[test]
    fn keys_are_unique_and_sorted() {
        let (i, sim) = setup();
        // Two left attributes under the same predicate, both matching the
        // right "name": the key (label, name) must appear once, best score.
        let e1 = entity(
            &i,
            "e1",
            &[
                ("label", Literal::str(&i, "Miami Heat").into()),
                ("label", Literal::str(&i, "The Heat").into()),
                ("founded", Literal::Integer(1988).into()),
            ],
        );
        let e2 = entity(&i, "e2", &[("name", Literal::str(&i, "Miami Heat").into())]);
        let fs = FeatureSet::build(&e1, &e2, &i, &sim, 0.3).unwrap();
        let label = IriId(i.intern("label"));
        let name = IriId(i.intern("name"));
        assert_eq!(fs.len(), 1);
        assert_eq!(fs.score_of(FeatureKey::new(label, name)), Some(1.0));
        let mut keys: Vec<FeatureKey> = fs.keys().collect();
        let sorted = {
            let mut k = keys.clone();
            k.sort();
            k
        };
        keys.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn scores_within_bounds() {
        let (i, sim) = setup();
        let e1 = entity(
            &i,
            "e1",
            &[
                ("a", Literal::str(&i, "partial match here").into()),
                ("b", Literal::Integer(100).into()),
            ],
        );
        let e2 = entity(
            &i,
            "e2",
            &[
                ("x", Literal::str(&i, "partial match there").into()),
                ("y", Literal::Integer(90).into()),
            ],
        );
        let fs = FeatureSet::build(&e1, &e2, &i, &sim, 0.3).unwrap();
        for f in fs.features() {
            assert!(f.score >= 0.3 && f.score <= 1.0, "score {}", f.score);
        }
    }
}
