//! Operational metrics for long-running ALEX deployments.
//!
//! The paper's system is interactive — users query, give feedback, and the
//! curation state evolves over days — so a deployment needs visibility into
//! request rates, latencies, and per-session curation progress. This module
//! provides the three standard instrument kinds behind a [`MetricsRegistry`]:
//!
//! * [`Counter`] — monotonically increasing event count (lock-free).
//! * [`Gauge`] — a value that can go up and down (queue depth, sessions).
//! * [`Histogram`] — latency distribution over exponential buckets with
//!   quantile estimation (p50/p95/p99).
//!
//! [`MetricsRegistry::render`] emits the whole registry in the plain-text
//! exposition format (`name{labels} value` lines, `# TYPE` comments), so a
//! scrape endpoint can serve it directly. Instruments are identified by
//! their full name *including* any `{label="…"}` suffix; the registry
//! interns each name once and hands out shared handles.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Counter name: probe retries against federated query sources (one per
/// re-attempt after a retryable failure).
pub const QUERY_SOURCE_RETRIES_TOTAL: &str = "alex_query_source_retries_total";

/// Counter name: federated source probe attempts that timed out.
pub const QUERY_SOURCE_TIMEOUTS_TOTAL: &str = "alex_query_source_timeouts_total";

/// Counter name: circuit-breaker trips (closed/half-open → open) across
/// federated query sources.
pub const QUERY_SOURCE_BREAKER_OPEN_TOTAL: &str = "alex_query_source_breaker_open_total";

/// Counter name: federated queries that returned a degraded (partial)
/// answer set because at least one source was skipped.
pub const QUERY_DEGRADED_TOTAL: &str = "alex_queries_degraded_total";

/// Counter name: records appended to session write-ahead logs.
pub const WAL_APPENDS_TOTAL: &str = "alex_wal_appends_total";

/// Counter name: `fsync` calls issued by session write-ahead logs.
pub const WAL_FSYNCS_TOTAL: &str = "alex_wal_fsyncs_total";

/// Counter name: frame bytes written to session write-ahead logs.
pub const WAL_BYTES_TOTAL: &str = "alex_wal_bytes_total";

/// Counter name: sessions recovered from disk at boot.
pub const RECOVERIES_TOTAL: &str = "alex_recoveries_total";

/// Counter name: WAL records replayed into recovered sessions at boot.
pub const RECOVERED_RECORDS_TOTAL: &str = "alex_recovered_records_total";

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can move in both directions.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding a floating-point value (e.g. precision/recall in [0,1]).
///
/// Stored as `f64` bits in an atomic; reads and writes are lock-free.
#[derive(Debug, Default)]
pub struct FloatGauge(AtomicU64);

impl FloatGauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of exponential buckets. The first bucket's upper bound is
/// [`Histogram::FIRST_BOUND`]; each subsequent bound is ×[`Histogram::GROWTH`],
/// spanning ~10 µs to ~10 minutes of latency with bounded memory.
const BUCKETS: usize = 64;

/// Every `EXPOSITION_STEP`-th internal bucket bound becomes a `le=` bound
/// in the rendered exposition: 16 bounds spanning ~25 µs to ~27 minutes,
/// each ×~3.3 apart — enough resolution for latency dashboards without
/// 64 lines per histogram.
const EXPOSITION_STEP: usize = 4;

#[derive(Debug)]
struct HistogramInner {
    counts: [u64; BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// A latency histogram over fixed exponential buckets.
///
/// Values are recorded in **seconds**. Quantiles are estimated by walking
/// the cumulative bucket counts and interpolating within the crossing
/// bucket, which bounds the error by the bucket's relative width (~40%).
#[derive(Debug)]
pub struct Histogram {
    inner: Mutex<HistogramInner>,
}

impl Histogram {
    /// Upper bound of the first bucket, in seconds.
    pub const FIRST_BOUND: f64 = 10e-6;
    /// Geometric growth factor between bucket bounds.
    pub const GROWTH: f64 = 1.35;

    fn new() -> Self {
        Histogram {
            inner: Mutex::new(HistogramInner {
                counts: [0; BUCKETS],
                count: 0,
                sum: 0.0,
                min: f64::INFINITY,
                max: 0.0,
            }),
        }
    }

    fn bucket_bound(i: usize) -> f64 {
        Self::FIRST_BOUND * Self::GROWTH.powi(i as i32)
    }

    /// Records one observation (seconds).
    pub fn record(&self, seconds: f64) {
        let v = if seconds.is_finite() && seconds >= 0.0 {
            seconds
        } else {
            0.0
        };
        let mut idx = 0;
        while idx + 1 < BUCKETS && v > Self::bucket_bound(idx) {
            idx += 1;
        }
        let mut g = self.inner.lock();
        g.counts[idx] += 1;
        g.count += 1;
        g.sum += v;
        g.min = g.min.min(v);
        g.max = g.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.inner.lock().count
    }

    /// Sum of all observations, in seconds.
    pub fn sum(&self) -> f64 {
        self.inner.lock().sum
    }

    /// Cumulative bucket counts at the exposition bounds: every
    /// [`EXPOSITION_STEP`]-th internal bound, as `(upper_bound_seconds,
    /// observations ≤ bound)` pairs. The final `+Inf` bucket is implicit —
    /// its count is [`Histogram::count`].
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let g = self.inner.lock();
        let mut out = Vec::with_capacity(BUCKETS / EXPOSITION_STEP);
        let mut cumulative = 0u64;
        for (i, &c) in g.counts.iter().enumerate() {
            cumulative += c;
            if (i + 1) % EXPOSITION_STEP == 0 {
                out.push((Self::bucket_bound(i), cumulative));
            }
        }
        out
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) in seconds, or `None`
    /// when nothing has been recorded.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let g = self.inner.lock();
        if g.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * g.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in g.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Clamp the bucket estimate by the true observed extremes so
                // single-observation histograms report the exact value.
                let bound = Self::bucket_bound(i);
                return Some(bound.clamp(g.min, g.max));
            }
        }
        Some(g.max)
    }
}

/// A process-wide registry of named instruments.
///
/// Names follow the usual conventions (`snake_case`, unit suffix) and may
/// carry an inline label set: `http_requests_total{route="/healthz"}`.
/// Each distinct name owns one instrument; repeated registration returns
/// the same handle.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    float_gauges: Mutex<BTreeMap<String, Arc<FloatGauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The float gauge registered under `name`, creating it on first use.
    pub fn float_gauge(&self, name: &str) -> Arc<FloatGauge> {
        let mut map = self.float_gauges.lock();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The histogram registered under `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Renders every instrument in Prometheus text exposition format,
    /// sorted by name.
    ///
    /// Counters and gauges emit one `name value` line. Histograms emit the
    /// standard Prometheus histogram series: cumulative
    /// `name_bucket{le="…"}` lines ending with `le="+Inf"`, then
    /// `name_sum` and `name_count`; a histogram name that already carries
    /// labels has the `le` label merged into the existing set.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, c) in self.counters.lock().iter() {
            out.push_str(&format!(
                "# TYPE {} counter\n{name} {}\n",
                base_name(name),
                c.get()
            ));
        }
        for (name, g) in self.gauges.lock().iter() {
            out.push_str(&format!(
                "# TYPE {} gauge\n{name} {}\n",
                base_name(name),
                g.get()
            ));
        }
        for (name, g) in self.float_gauges.lock().iter() {
            out.push_str(&format!(
                "# TYPE {} gauge\n{name} {}\n",
                base_name(name),
                g.get()
            ));
        }
        for (name, h) in self.histograms.lock().iter() {
            out.push_str(&format!("# TYPE {} histogram\n", base_name(name)));
            let (base, labels) = split_labels(name);
            let bucket_line = |le: &str, count: u64| {
                let series = with_label(&format!("{base}_bucket{labels}"), &format!("le=\"{le}\""));
                format!("{series} {count}\n")
            };
            for (bound, cumulative) in h.cumulative_buckets() {
                out.push_str(&bucket_line(&format!("{bound}"), cumulative));
            }
            out.push_str(&bucket_line("+Inf", h.count()));
            out.push_str(&format!("{base}_sum{labels} {}\n", h.sum()));
            out.push_str(&format!("{base}_count{labels} {}\n", h.count()));
        }
        out
    }
}

/// `name{...}` → `name`.
fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Splits `name{labels}` into (`name`, `{labels}` or `""`).
fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(i) => (&name[..i], &name[i..]),
        None => (name, ""),
    }
}

/// Merges one `key="value"` pair into a possibly-labelled name.
fn with_label(name: &str, label: &str) -> String {
    let (base, labels) = split_labels(name);
    if labels.is_empty() {
        format!("{base}{{{label}}}")
    } else {
        let inner = &labels[1..labels.len() - 1];
        format!("{base}{{{inner},{label}}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("requests_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Re-registration returns the same instrument.
        assert_eq!(reg.counter("requests_total").get(), 5);

        let g = reg.gauge("queue_depth");
        g.set(3);
        g.add(-2);
        assert_eq!(g.get(), 1);

        let f = reg.float_gauge("precision");
        f.set(0.875);
        assert_eq!(reg.float_gauge("precision").get(), 0.875);
        assert!(reg.render().contains("precision 0.875"));
    }

    #[test]
    fn histogram_quantiles_order_correctly() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        for i in 1..=100 {
            h.record(i as f64 / 1000.0); // 1ms .. 100ms
        }
        let p50 = h.quantile(0.5).unwrap();
        let p95 = h.quantile(0.95).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        // Bucketed estimates stay within the coarse bucket error band.
        assert!((0.02..=0.11).contains(&p50), "p50 {p50}");
        assert!(p99 <= 0.14, "p99 {p99}");
        assert_eq!(h.count(), 100);
        assert!((h.sum() - 5.05).abs() < 1e-9);
    }

    #[test]
    fn single_observation_is_exact() {
        let h = Histogram::new();
        h.record(0.25);
        assert_eq!(h.quantile(0.5), Some(0.25));
        assert_eq!(h.quantile(0.99), Some(0.25));
    }

    #[test]
    fn render_covers_all_instrument_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter("http_requests_total{route=\"/healthz\",status=\"200\"}")
            .inc();
        reg.gauge("sessions_active").set(2);
        reg.histogram("request_seconds{route=\"/query\"}")
            .record(0.003);
        let text = reg.render();
        assert!(text.contains("# TYPE http_requests_total counter"));
        assert!(text.contains("http_requests_total{route=\"/healthz\",status=\"200\"} 1"));
        assert!(text.contains("sessions_active 2"));
        assert!(text.contains("# TYPE request_seconds histogram"));
        assert!(text.contains("request_seconds_bucket{route=\"/query\",le=\"+Inf\"} 1"));
        assert!(text.contains("request_seconds_count{route=\"/query\"} 1"));
        assert!(text.contains("request_seconds_sum{route=\"/query\"} 0.003"));
    }

    /// Locks the Prometheus histogram exposition format: cumulative
    /// `_bucket{le="…"}` series ending in `+Inf`, then `_sum` and
    /// `_count`, with `le` merged into any existing label set.
    #[test]
    fn histogram_exposition_is_prometheus_format() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("latency_seconds{route=\"/q\"}");
        h.record(0.003);
        h.record(0.003);
        h.record(2.0);
        let text = reg.render();
        let lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("latency_seconds") || l.contains("latency_seconds"))
            .collect();
        assert_eq!(lines[0], "# TYPE latency_seconds histogram");
        // Bucket lines are cumulative and monotone, and every one carries
        // both the original label and `le`.
        let buckets: Vec<&&str> = lines
            .iter()
            .filter(|l| l.starts_with("latency_seconds_bucket"))
            .collect();
        assert!(!buckets.is_empty());
        let mut prev = 0u64;
        for line in &buckets {
            assert!(
                line.starts_with("latency_seconds_bucket{route=\"/q\",le=\""),
                "{line}"
            );
            let count: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(count >= prev, "buckets must be cumulative: {text}");
            prev = count;
        }
        // The +Inf bucket is last and equals the observation count.
        assert_eq!(
            **buckets.last().unwrap(),
            "latency_seconds_bucket{route=\"/q\",le=\"+Inf\"} 3"
        );
        // A finite bound separates the two fast observations from the
        // slow one (2s exceeds all bounds below ~3.3s only at the top).
        assert!(
            buckets.iter().any(|l| l.ends_with(" 2")),
            "expected an intermediate cumulative count of 2: {text}"
        );
        assert!(text.contains("latency_seconds_sum{route=\"/q\"} 2.006"));
        assert!(text.contains("latency_seconds_count{route=\"/q\"} 3"));
        // _sum comes before _count, after the buckets (Prometheus order).
        let sum_at = text.find("latency_seconds_sum").unwrap();
        let count_at = text.find("latency_seconds_count").unwrap();
        let inf_at = text.find("le=\"+Inf\"").unwrap();
        assert!(inf_at < sum_at && sum_at < count_at);
    }

    #[test]
    fn histogram_is_shared_across_threads() {
        let reg = Arc::new(MetricsRegistry::new());
        let h = reg.histogram("shared_seconds");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for _ in 0..250 {
                        h.record(0.001);
                    }
                });
            }
        });
        assert_eq!(reg.histogram("shared_seconds").count(), 1000);
    }
}
