//! Dataset profiles: how one synthetic knowledge base renders the shared
//! world of individuals through its own vocabulary, typing discipline, and
//! noise level.

use crate::noise::StringNoise;

/// The kind of real-world individual an entity describes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EntityKind {
    /// A person (journalist, politician, …).
    Person,
    /// An organization or company.
    Organization,
    /// A geographic location.
    Place,
    /// A pharmaceutical drug.
    Drug,
    /// A human language.
    Language,
    /// A scientific conference or workshop.
    Conference,
    /// An NBA basketball player.
    Player,
}

impl EntityKind {
    /// All kinds, for iteration in tests and mixtures.
    pub const ALL: [EntityKind; 7] = [
        EntityKind::Person,
        EntityKind::Organization,
        EntityKind::Place,
        EntityKind::Drug,
        EntityKind::Language,
        EntityKind::Conference,
        EntityKind::Player,
    ];

    /// A readable class-name fragment.
    pub fn class_name(self) -> &'static str {
        match self {
            EntityKind::Person => "Person",
            EntityKind::Organization => "Organization",
            EntityKind::Place => "Place",
            EntityKind::Drug => "Drug",
            EntityKind::Language => "Language",
            EntityKind::Conference => "Conference",
            EntityKind::Player => "BasketballPlayer",
        }
    }
}

/// Predicate IRIs a dataset uses for each logical attribute. Different
/// datasets use *different* predicates for the same attribute — that
/// heterogeneity is exactly what ALEX's feature keys range over.
#[derive(Clone, Debug)]
pub struct Vocabulary {
    /// Primary human-readable name.
    pub label: String,
    /// Secondary name, when the dataset materializes aliases.
    pub alt_label: Option<String>,
    /// Birth/founding year (integer-ish).
    pub year: String,
    /// Precise date, when the dataset stores one.
    pub date: Option<String>,
    /// A numeric magnitude (mass, population, …).
    pub quantity: Option<String>,
    /// A short identifying code (ISO code, formula, …).
    pub code: Option<String>,
    /// An affiliation string (team, employer, venue).
    pub affiliation: Option<String>,
    /// Class namespace for `rdf:type` objects.
    pub class_ns: String,
    /// The dataset's catch-all top class (`owl:Thing`, `skos:Concept`, …).
    /// Datasets use *different* top-class IRIs — as the real LOD datasets
    /// do — so the `(rdf:type, rdf:type)` feature only fires for pairs
    /// whose domain classes genuinely resemble each other, matching the
    /// paper's observation that θ-filtering removes ~95% of all pairs.
    pub top_class: String,
    /// How this dataset spells class names.
    pub class_style: ClassStyle,
}

/// Naming convention a dataset uses for its `rdf:type` classes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ClassStyle {
    /// Plain readable names: `Person`.
    Plain,
    /// Short opaque codes: `nyt_per`.
    Coded,
    /// Concept-suffixed names: `PersonConcept`.
    Suffixed,
}

impl ClassStyle {
    /// Renders a kind's class local name in this style.
    pub fn render(self, kind: EntityKind) -> String {
        match self {
            ClassStyle::Plain => kind.class_name().to_owned(),
            ClassStyle::Coded => {
                let code: String = kind.class_name().chars().take(3).collect();
                format!("x_{}", code.to_lowercase())
            }
            ClassStyle::Suffixed => format!("{}Concept", kind.class_name()),
        }
    }
}

impl Vocabulary {
    /// A vocabulary rooted at `ns` using DBpedia-style predicate spellings.
    pub fn dbpedia_style(ns: &str) -> Self {
        Self {
            label: format!("{ns}/ontology/name"),
            alt_label: Some(format!("{ns}/ontology/alias")),
            year: format!("{ns}/ontology/year"),
            date: Some(format!("{ns}/ontology/birthDate")),
            quantity: Some(format!("{ns}/ontology/quantity")),
            code: Some(format!("{ns}/ontology/code")),
            affiliation: Some(format!("{ns}/ontology/affiliation")),
            class_ns: format!("{ns}/class/"),
            top_class: alex_rdf::vocab::OWL_THING.to_owned(),
            class_style: ClassStyle::Plain,
        }
    }

    /// A vocabulary using element-style spellings (NYTimes-like).
    pub fn elements_style(ns: &str) -> Self {
        Self {
            label: format!("{ns}/elements/fullName"),
            alt_label: None,
            year: format!("{ns}/elements/yearOfBirth"),
            date: Some(format!("{ns}/elements/dateOfBirth")),
            quantity: Some(format!("{ns}/elements/mentionCount")),
            code: None,
            affiliation: Some(format!("{ns}/elements/associatedWith")),
            class_ns: format!("{ns}/classes/"),
            top_class: "http://www.w3.org/2004/02/skos/core#Concept".to_owned(),
            class_style: ClassStyle::Coded,
        }
    }

    /// A terse property-style vocabulary (OpenCyc-like).
    pub fn concept_style(ns: &str) -> Self {
        Self {
            label: format!("{ns}/prettyString"),
            alt_label: Some(format!("{ns}/denotation")),
            year: format!("{ns}/startYear"),
            date: None,
            quantity: Some(format!("{ns}/magnitude")),
            code: Some(format!("{ns}/identifier")),
            affiliation: Some(format!("{ns}/relatedTo")),
            class_ns: format!("{ns}/concept/"),
            top_class: format!("{ns}/concept/Individual"),
            class_style: ClassStyle::Suffixed,
        }
    }
}

/// Everything that shapes one dataset's rendering of the shared world.
#[derive(Clone, Debug)]
pub struct DatasetProfile {
    /// Display name ("DBpedia").
    pub name: String,
    /// IRI namespace root ("http://dbpedia.org").
    pub namespace: String,
    /// Predicate vocabulary.
    pub vocab: Vocabulary,
    /// String-attribute noise.
    pub noise: StringNoise,
    /// Probability of silently dropping each non-label attribute.
    pub missing_attr: f64,
    /// Probability a year is off by one.
    pub year_jitter: f64,
    /// Whether numbers are stored as plain strings (a common LOD
    /// heterogeneity that exercises lexical coercion in the similarity
    /// layer).
    pub numbers_as_strings: bool,
}

impl DatasetProfile {
    /// DBpedia-like: rich vocabulary, mild extraction noise.
    pub fn dbpedia() -> Self {
        Self {
            name: "DBpedia".into(),
            namespace: "http://dbpedia.example.org".into(),
            vocab: Vocabulary::dbpedia_style("http://dbpedia.example.org"),
            noise: StringNoise::MILD,
            missing_attr: 0.15,
            year_jitter: 0.05,
            numbers_as_strings: false,
        }
    }

    /// OpenCyc-like: curated concepts, terse vocabulary, very clean strings.
    pub fn opencyc() -> Self {
        Self {
            name: "OpenCyc".into(),
            namespace: "http://opencyc.example.org".into(),
            vocab: Vocabulary::concept_style("http://opencyc.example.org"),
            noise: StringNoise {
                typo: 0.05,
                reorder: 0.02,
                abbreviate: 0.02,
                case_flip: 0.03,
            },
            missing_attr: 0.30,
            year_jitter: 0.02,
            numbers_as_strings: false,
        }
    }

    /// NYTimes-like: editorial data, moderate noise, numbers as strings.
    pub fn nytimes() -> Self {
        Self {
            name: "NYTimes".into(),
            namespace: "http://nytimes.example.org".into(),
            vocab: Vocabulary::elements_style("http://nytimes.example.org"),
            noise: StringNoise {
                typo: 0.06,
                reorder: 0.25,
                abbreviate: 0.03,
                case_flip: 0.04,
            },
            missing_attr: 0.25,
            year_jitter: 0.08,
            numbers_as_strings: true,
        }
    }

    /// Drugbank-like: codes and formulas, light noise.
    pub fn drugbank() -> Self {
        Self {
            name: "Drugbank".into(),
            namespace: "http://drugbank.example.org".into(),
            vocab: Vocabulary::dbpedia_style("http://drugbank.example.org"),
            noise: StringNoise {
                typo: 0.08,
                reorder: 0.0,
                abbreviate: 0.0,
                case_flip: 0.10,
            },
            missing_attr: 0.10,
            year_jitter: 0.02,
            numbers_as_strings: false,
        }
    }

    /// Lexvo-like: language labels, heavy multilingual drift.
    pub fn lexvo() -> Self {
        Self {
            name: "Lexvo".into(),
            namespace: "http://lexvo.example.org".into(),
            vocab: Vocabulary::elements_style("http://lexvo.example.org"),
            noise: StringNoise {
                typo: 0.18,
                reorder: 0.05,
                abbreviate: 0.04,
                case_flip: 0.10,
            },
            missing_attr: 0.20,
            year_jitter: 0.10,
            numbers_as_strings: true,
        }
    }

    /// Semantic-Web-Dogfood-like: publications metadata, quite clean.
    pub fn swdogfood() -> Self {
        Self {
            name: "SemanticWebDogfood".into(),
            namespace: "http://swdf.example.org".into(),
            vocab: Vocabulary::dbpedia_style("http://swdf.example.org"),
            noise: StringNoise {
                typo: 0.05,
                reorder: 0.05,
                abbreviate: 0.08,
                case_flip: 0.02,
            },
            missing_attr: 0.10,
            year_jitter: 0.02,
            numbers_as_strings: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabularies_differ_between_profiles() {
        let a = DatasetProfile::dbpedia();
        let b = DatasetProfile::nytimes();
        assert_ne!(a.vocab.label, b.vocab.label);
        assert_ne!(a.namespace, b.namespace);
    }

    #[test]
    fn class_names_cover_all_kinds() {
        for k in EntityKind::ALL {
            assert!(!k.class_name().is_empty());
        }
    }

    #[test]
    fn profiles_have_sane_probabilities() {
        for p in [
            DatasetProfile::dbpedia(),
            DatasetProfile::opencyc(),
            DatasetProfile::nytimes(),
            DatasetProfile::drugbank(),
            DatasetProfile::lexvo(),
            DatasetProfile::swdogfood(),
        ] {
            assert!((0.0..=1.0).contains(&p.missing_attr), "{}", p.name);
            assert!((0.0..=1.0).contains(&p.year_jitter), "{}", p.name);
            assert!((0.0..=1.0).contains(&p.noise.typo), "{}", p.name);
        }
    }
}
