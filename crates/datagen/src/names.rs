//! Deterministic name synthesis for the synthetic knowledge bases.
//!
//! Names must be *distinctive but confusable*: distinct individuals need
//! distinct names (so ground truth is unambiguous), yet names must share
//! tokens and character structure (so blocking, PARIS, and ALEX all face a
//! realistic confusion landscape instead of trivially separable strings).
//! Syllable-composed names deliver both.

use rand::rngs::StdRng;
use rand::Rng;

const ONSETS: &[&str] = &[
    "b", "br", "c", "ch", "d", "dr", "f", "g", "gr", "h", "j", "k", "kr", "l", "m", "n", "p", "pr",
    "r", "s", "sh", "st", "t", "th", "tr", "v", "w", "z",
];
const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ia", "ea", "ou"];
const CODAS: &[&str] = &["", "n", "r", "s", "l", "m", "t", "nd", "rk", "x"];

/// Composes one capitalized pseudo-word of `syllables` syllables.
pub fn word(rng: &mut StdRng, syllables: usize) -> String {
    let mut s = String::new();
    for k in 0..syllables.max(1) {
        s.push_str(ONSETS[rng.gen_range(0..ONSETS.len())]);
        s.push_str(VOWELS[rng.gen_range(0..VOWELS.len())]);
        if k + 1 == syllables || rng.gen_bool(0.3) {
            s.push_str(CODAS[rng.gen_range(0..CODAS.len())]);
        }
    }
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => s,
    }
}

/// A person name: "Given Family".
pub fn person(rng: &mut StdRng) -> String {
    let given = word(rng, 2);
    let n = rng.gen_range(2..4);
    format!("{given} {}", word(rng, n))
}

/// An organization name, e.g. "Krano Deltor Corporation".
///
/// Two unique words plus a suffix: unrelated organizations sharing only the
/// suffix token score 1/5 = 0.2 on token Jaccard, safely below the paper's
/// θ = 0.3 filter, while two renderings of the *same* organization stay
/// close to 1.
pub fn organization(rng: &mut StdRng) -> String {
    const SUFFIX: &[&str] = &[
        "Corporation",
        "Institute",
        "University",
        "Press",
        "Labs",
        "Group",
    ];
    let n = rng.gen_range(2..4);
    let first = word(rng, n);
    format!(
        "{first} {} {}",
        word(rng, 2),
        SUFFIX[rng.gen_range(0..SUFFIX.len())]
    )
}

/// A place name, e.g. "Thorylburg".
///
/// A single compound token (stem + morpheme suffix): unrelated places share
/// no tokens and their edit similarity stays in the 0.3–0.5 band, well
/// separated from same-place renderings near 1.0.
pub fn place(rng: &mut StdRng) -> String {
    const SUFFIX: &[&str] = &[
        "ville", "burg", "ton", "field", "mont", "dale", "port", "haven",
    ];
    let n = rng.gen_range(2..4);
    format!("{}{}", word(rng, n), SUFFIX[rng.gen_range(0..SUFFIX.len())])
}

/// A drug name, e.g. "Prandexine".
pub fn drug(rng: &mut StdRng) -> String {
    const SUFFIX: &[&str] = &["ine", "ol", "ax", "mab", "pril", "statin"];
    let n = rng.gen_range(2..4);
    format!("{}{}", word(rng, n), SUFFIX[rng.gen_range(0..SUFFIX.len())])
}

/// A human-language name, e.g. "Kranese".
pub fn language(rng: &mut StdRng) -> String {
    const SUFFIX: &[&str] = &["ese", "ish", "ian", "ic", "i"];
    let n = rng.gen_range(1..3);
    format!("{}{}", word(rng, n), SUFFIX[rng.gen_range(0..SUFFIX.len())])
}

/// A conference name, e.g. "Krano Praxel Symposium".
///
/// Two unique words plus a kind token, so unrelated conferences score
/// ≤ 1/5 on token overlap (no "International Conference on" boilerplate,
/// which would push every cross pair above the θ filter).
pub fn conference(rng: &mut StdRng) -> String {
    const KIND: &[&str] = &["Conference", "Symposium", "Workshop", "Forum", "Congress"];
    let first = word(rng, 2);
    format!(
        "{first} {} {}",
        word(rng, 2),
        KIND[rng.gen_range(0..KIND.len())]
    )
}

/// A sports-team name, e.g. "Thorylburg Hawks".
pub fn team(rng: &mut StdRng) -> String {
    const MASCOT: &[&str] = &[
        "Hawks",
        "Bulls",
        "Heat",
        "Kings",
        "Wolves",
        "Rockets",
        "Suns",
        "Jazz",
        "Nets",
        "Spurs",
        "Clippers",
        "Lakers",
        "Celtics",
        "Pistons",
        "Pacers",
        "Bucks",
        "Magic",
        "Wizards",
        "Raptors",
        "Grizzlies",
        "Hornets",
        "Pelicans",
        "Knicks",
        "Sixers",
        "Blazers",
        "Nuggets",
        "Timberwolves",
        "Mavericks",
    ];
    format!("{} {}", place(rng), MASCOT[rng.gen_range(0..MASCOT.len())])
}

/// A chemical-formula-like code, e.g. "C17H21NO4".
pub fn formula(rng: &mut StdRng) -> String {
    format!(
        "C{}H{}N{}O{}",
        rng.gen_range(5..30),
        rng.gen_range(5..40),
        rng.gen_range(0..4),
        rng.gen_range(0..8)
    )
}

/// A two-letter ISO-ish language code.
pub fn iso_code(rng: &mut StdRng) -> String {
    let a = char::from(b'a' + rng.gen_range(0..26u8));
    let b = char::from(b'a' + rng.gen_range(0..26u8));
    format!("{a}{b}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn words_are_nonempty_and_capitalized() {
        let mut rng = StdRng::seed_from_u64(alex_rdf::test_seed(1));
        for _ in 0..100 {
            let w = word(&mut rng, 2);
            assert!(!w.is_empty());
            assert!(w.chars().next().unwrap().is_uppercase());
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let mut a = StdRng::seed_from_u64(alex_rdf::test_seed(5));
        let mut b = StdRng::seed_from_u64(alex_rdf::test_seed(5));
        for _ in 0..20 {
            assert_eq!(person(&mut a), person(&mut b));
        }
    }

    #[test]
    fn names_are_mostly_distinct() {
        let mut rng = StdRng::seed_from_u64(alex_rdf::test_seed(2));
        let names: std::collections::HashSet<String> = (0..500).map(|_| person(&mut rng)).collect();
        assert!(names.len() > 480, "only {} distinct of 500", names.len());
    }

    #[test]
    fn domain_shapes() {
        let mut rng = StdRng::seed_from_u64(alex_rdf::test_seed(3));
        assert!(person(&mut rng).contains(' '));
        assert_eq!(conference(&mut rng).split_whitespace().count(), 3);
        assert_eq!(organization(&mut rng).split_whitespace().count(), 3);
        assert_eq!(place(&mut rng).split_whitespace().count(), 1);
        let f = formula(&mut rng);
        assert!(f.starts_with('C') && f.contains('H'));
        assert_eq!(iso_code(&mut rng).len(), 2);
        assert!(!drug(&mut rng).is_empty());
        assert!(!language(&mut rng).is_empty());
        assert!(!organization(&mut rng).is_empty());
        assert!(!team(&mut rng).is_empty());
        assert!(!place(&mut rng).is_empty());
    }
}
