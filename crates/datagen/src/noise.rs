//! Seeded attribute-noise operators.
//!
//! Real knowledge bases disagree on spelling, token order, abbreviations,
//! and off-by-one numbers. These operators inject exactly those
//! disagreements so that (a) the rebuilt PARIS baseline cannot trivially
//! link everything and (b) ALEX's feature scores spread over `[θ, 1]`,
//! which is what makes step-size exploration (paper §4.2, Appendix D)
//! meaningful.

use rand::rngs::StdRng;
use rand::Rng;

/// Applies one random typo: swap two adjacent characters, drop one,
/// duplicate one, or replace one with a letter. Strings shorter than two
/// characters are returned unchanged.
pub fn typo(s: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < 2 {
        return s.to_owned();
    }
    let i = rng.gen_range(0..chars.len() - 1);
    let mut out = chars.clone();
    match rng.gen_range(0..4u8) {
        0 => out.swap(i, i + 1),
        1 => {
            out.remove(i);
        }
        2 => out.insert(i, chars[i]),
        _ => out[i] = char::from(b'a' + rng.gen_range(0..26u8)),
    }
    out.into_iter().collect()
}

/// Reorders the tokens of a two-or-more-token string as "rest, first"
/// ("LeBron James" → "James, LeBron"); single tokens are unchanged.
pub fn reorder(s: &str) -> String {
    let mut tokens: Vec<&str> = s.split_whitespace().collect();
    if tokens.len() < 2 {
        return s.to_owned();
    }
    let first = tokens.remove(0);
    format!("{}, {}", tokens.join(" "), first)
}

/// Abbreviates the first token to its initial ("LeBron James" → "L. James").
pub fn abbreviate(s: &str) -> String {
    let mut tokens = s.split_whitespace();
    match (tokens.next(), tokens.clone().next()) {
        (Some(first), Some(_)) => {
            let initial = first
                .chars()
                .next()
                .map(|c| format!("{c}."))
                .unwrap_or_default();
            let rest: Vec<&str> = tokens.collect();
            format!("{initial} {}", rest.join(" "))
        }
        _ => s.to_owned(),
    }
}

/// Uppercases or lowercases the whole string.
pub fn case_flip(s: &str, rng: &mut StdRng) -> String {
    if rng.gen_bool(0.5) {
        s.to_uppercase()
    } else {
        s.to_lowercase()
    }
}

/// Jitters an integer by ±`amount`.
pub fn jitter_int(v: i64, amount: i64, rng: &mut StdRng) -> i64 {
    v + rng.gen_range(-amount..=amount)
}

/// Applies string noise according to independent probabilities. Operators
/// compose (a name can be both reordered and typo'd).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StringNoise {
    /// Probability of one typo.
    pub typo: f64,
    /// Probability of token reordering.
    pub reorder: f64,
    /// Probability of abbreviation.
    pub abbreviate: f64,
    /// Probability of case flipping.
    pub case_flip: f64,
}

impl StringNoise {
    /// No noise at all.
    pub const CLEAN: StringNoise = StringNoise {
        typo: 0.0,
        reorder: 0.0,
        abbreviate: 0.0,
        case_flip: 0.0,
    };

    /// Mild noise typical of well-curated KBs.
    pub const MILD: StringNoise = StringNoise {
        typo: 0.10,
        reorder: 0.05,
        abbreviate: 0.03,
        case_flip: 0.05,
    };

    /// Heavy noise typical of extracted / crowd-sourced KBs.
    pub const HEAVY: StringNoise = StringNoise {
        typo: 0.30,
        reorder: 0.15,
        abbreviate: 0.10,
        case_flip: 0.10,
    };

    /// Applies the configured noise to `s`.
    pub fn apply(&self, s: &str, rng: &mut StdRng) -> String {
        let mut out = s.to_owned();
        if rng.gen_bool(self.reorder) {
            out = reorder(&out);
        }
        if rng.gen_bool(self.abbreviate) {
            out = abbreviate(&out);
        }
        if rng.gen_bool(self.typo) {
            out = typo(&out, rng);
        }
        if rng.gen_bool(self.case_flip) {
            out = case_flip(&out, rng);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(alex_rdf::test_seed(7))
    }

    #[test]
    fn typo_changes_string_but_stays_close() {
        let mut r = rng();
        for _ in 0..100 {
            let t = typo("lebron james", &mut r);
            let dist = alex_sim::string::levenshtein("lebron james", &t);
            assert!(
                dist <= 2,
                "one typo is at most 2 edits (insert counts once): {t}"
            );
        }
    }

    #[test]
    fn typo_on_short_strings_is_identity() {
        let mut r = rng();
        assert_eq!(typo("a", &mut r), "a");
        assert_eq!(typo("", &mut r), "");
    }

    #[test]
    fn reorder_known() {
        assert_eq!(reorder("LeBron James"), "James, LeBron");
        assert_eq!(reorder("LeBron Raymone James"), "Raymone James, LeBron");
        assert_eq!(reorder("Single"), "Single");
    }

    #[test]
    fn abbreviate_known() {
        assert_eq!(abbreviate("LeBron James"), "L. James");
        assert_eq!(abbreviate("Single"), "Single");
    }

    #[test]
    fn jitter_bounds() {
        let mut r = rng();
        for _ in 0..100 {
            let v = jitter_int(1984, 1, &mut r);
            assert!((1983..=1985).contains(&v));
        }
    }

    #[test]
    fn clean_noise_is_identity() {
        let mut r = rng();
        assert_eq!(
            StringNoise::CLEAN.apply("LeBron James", &mut r),
            "LeBron James"
        );
    }

    #[test]
    fn heavy_noise_usually_perturbs() {
        let mut r = rng();
        let mut changed = 0;
        for _ in 0..200 {
            if StringNoise::HEAVY.apply("LeBron James", &mut r) != "LeBron James" {
                changed += 1;
            }
        }
        assert!(changed > 60, "heavy noise changed only {changed}/200");
    }

    #[test]
    fn noise_is_deterministic_under_seed() {
        let mut r1 = StdRng::seed_from_u64(alex_rdf::test_seed(99));
        let mut r2 = StdRng::seed_from_u64(alex_rdf::test_seed(99));
        for _ in 0..50 {
            assert_eq!(
                StringNoise::HEAVY.apply("Kobe Bryant", &mut r1),
                StringNoise::HEAVY.apply("Kobe Bryant", &mut r2)
            );
        }
    }
}
