//! Candidate-set degraders: construct initial link sets with a target
//! precision and recall.
//!
//! The paper's experiments start from PARIS output, which happens to land
//! in three characteristic regimes (good P / bad R, bad P / good R, both
//! bad). To reproduce each figure's starting point exactly — independent of
//! how our rebuilt PARIS calibrates — the experiment harness synthesizes
//! the initial candidate set at the figure's starting quality and lets
//! ALEX take it from there. DESIGN.md documents this substitution.

use std::collections::HashSet;

use alex_rdf::Link;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::generator::truth_sides;

/// Builds an initial candidate set with approximately the given `precision`
/// and `recall` against `truth`.
///
/// Correct links are a uniform sample of `recall · |truth|` ground-truth
/// links; wrong links pair a random ground-truth left entity with a random
/// non-matching right entity until `correct / total = precision`.
///
/// # Panics
///
/// Panics when `precision` is not in `(0, 1]` or `recall` not in `[0, 1]`.
pub fn degrade(truth: &HashSet<Link>, precision: f64, recall: f64, rng: &mut StdRng) -> Vec<Link> {
    assert!(
        precision > 0.0 && precision <= 1.0,
        "precision out of (0,1]: {precision}"
    );
    assert!(
        (0.0..=1.0).contains(&recall),
        "recall out of [0,1]: {recall}"
    );

    let mut all: Vec<Link> = truth.iter().copied().collect();
    all.sort_unstable();
    all.shuffle(rng);
    let correct_n = ((recall * truth.len() as f64).round() as usize).min(all.len());
    let mut out: Vec<Link> = all[..correct_n].to_vec();

    let wrong_n = ((correct_n as f64 / precision).round() as usize).saturating_sub(correct_n);
    let (lefts, rights) = truth_sides(truth);
    if !lefts.is_empty() && !rights.is_empty() {
        let mut seen: HashSet<Link> = out.iter().copied().collect();
        let mut attempts = 0usize;
        let max_attempts = wrong_n.saturating_mul(50) + 1000;
        while out.len() < correct_n + wrong_n && attempts < max_attempts {
            attempts += 1;
            let l = lefts[rng.gen_range(0..lefts.len())];
            let r = rights[rng.gen_range(0..rights.len())];
            let link = Link::new(l, r);
            if truth.contains(&link) || !seen.insert(link) {
                continue;
            }
            out.push(link);
        }
    }
    out
}

/// Measures the exact precision/recall a degraded set achieved (degraders
/// are approximate for tiny truths; experiments report the measured start).
pub fn measure(candidates: &[Link], truth: &HashSet<Link>) -> (f64, f64) {
    let correct = candidates.iter().filter(|l| truth.contains(l)).count() as f64;
    let p = if candidates.is_empty() {
        1.0
    } else {
        correct / candidates.len() as f64
    };
    let r = if truth.is_empty() {
        1.0
    } else {
        correct / truth.len() as f64
    };
    (p, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alex_rdf::{Interner, IriId};
    use rand::SeedableRng;

    fn truth(n: usize) -> HashSet<Link> {
        let i = Interner::new();
        (0..n)
            .map(|k| {
                Link::new(
                    IriId(i.intern(&format!("l{k}"))),
                    IriId(i.intern(&format!("r{k}"))),
                )
            })
            .collect()
    }

    #[test]
    fn hits_requested_quality() {
        let t = truth(500);
        let mut rng = StdRng::seed_from_u64(alex_rdf::test_seed(1));
        for &(p, r) in &[(0.85, 0.2), (0.3, 0.95), (0.35, 0.3), (1.0, 1.0)] {
            let cand = degrade(&t, p, r, &mut rng);
            let (mp, mr) = measure(&cand, &t);
            assert!((mp - p).abs() < 0.05, "precision {mp} vs {p}");
            assert!((mr - r).abs() < 0.05, "recall {mr} vs {r}");
        }
    }

    #[test]
    fn zero_recall_gives_empty() {
        let t = truth(50);
        let mut rng = StdRng::seed_from_u64(alex_rdf::test_seed(2));
        let cand = degrade(&t, 0.5, 0.0, &mut rng);
        assert!(cand.is_empty());
    }

    #[test]
    fn no_duplicates_and_wrong_links_are_wrong() {
        let t = truth(100);
        let mut rng = StdRng::seed_from_u64(alex_rdf::test_seed(3));
        let cand = degrade(&t, 0.4, 0.8, &mut rng);
        let set: HashSet<Link> = cand.iter().copied().collect();
        assert_eq!(set.len(), cand.len(), "duplicates found");
        let wrong = cand.iter().filter(|l| !t.contains(l)).count();
        assert!(wrong > 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let t = truth(100);
        let a = degrade(
            &t,
            0.5,
            0.5,
            &mut StdRng::seed_from_u64(alex_rdf::test_seed(9)),
        );
        let b = degrade(
            &t,
            0.5,
            0.5,
            &mut StdRng::seed_from_u64(alex_rdf::test_seed(9)),
        );
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "precision out of")]
    fn rejects_zero_precision() {
        let t = truth(10);
        degrade(
            &t,
            0.0,
            0.5,
            &mut StdRng::seed_from_u64(alex_rdf::test_seed(1)),
        );
    }

    #[test]
    fn measure_edge_cases() {
        let t = truth(10);
        assert_eq!(measure(&[], &t), (1.0, 0.0));
        let all: Vec<Link> = t.iter().copied().collect();
        assert_eq!(measure(&all, &t), (1.0, 1.0));
        assert_eq!(measure(&all, &HashSet::new()), (0.0, 1.0));
    }
}
