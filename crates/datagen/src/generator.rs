//! The pair generator: one shared world of individuals, rendered twice.
//!
//! Overlap individuals appear in both datasets (their cross-dataset entity
//! pairs are the ground truth); extra individuals appear on one side only
//! and act as distractors. Each dataset renders an individual through its
//! own [`DatasetProfile`] — vocabulary, noise, missing attributes, typing
//! discipline — so the two descriptions agree approximately, never exactly.

use std::collections::HashSet;

use alex_rdf::{Date, Interner, IriId, Link, Literal, Store};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::names;
use crate::noise::jitter_int;
use crate::profile::{DatasetProfile, EntityKind};

/// One real-world individual of the shared world.
#[derive(Clone, Debug)]
pub struct Individual {
    /// What kind of thing it is.
    pub kind: EntityKind,
    /// Canonical name.
    pub name: String,
    /// Optional alias.
    pub alt_name: Option<String>,
    /// Birth/founding year.
    pub year: i64,
    /// Precise date (persons and players).
    pub date: Option<Date>,
    /// A numeric magnitude.
    pub quantity: f64,
    /// A short identifying code.
    pub code: Option<String>,
    /// An affiliation string.
    pub affiliation: Option<String>,
}

impl Individual {
    /// Samples one individual of `kind`.
    pub fn sample(kind: EntityKind, rng: &mut StdRng) -> Self {
        let (name, code, affiliation) = match kind {
            EntityKind::Person => (names::person(rng), None, Some(names::organization(rng))),
            EntityKind::Organization => (names::organization(rng), None, Some(names::place(rng))),
            EntityKind::Place => (names::place(rng), Some(names::iso_code(rng)), None),
            EntityKind::Drug => (names::drug(rng), Some(names::formula(rng)), None),
            EntityKind::Language => (names::language(rng), Some(names::iso_code(rng)), None),
            EntityKind::Conference => (names::conference(rng), None, Some(names::place(rng))),
            EntityKind::Player => (names::person(rng), None, Some(names::team(rng))),
        };
        let year = match kind {
            EntityKind::Person | EntityKind::Player => rng.gen_range(1940..2000),
            EntityKind::Conference => rng.gen_range(1990..2015),
            _ => rng.gen_range(1800..2010),
        };
        let date = matches!(kind, EntityKind::Person | EntityKind::Player).then(|| {
            Date::new(year as i32, rng.gen_range(1..=12), rng.gen_range(1..=28))
                .expect("day ≤ 28 is always valid")
        });
        let alt_name = rng.gen_bool(0.4).then(|| crate::noise::abbreviate(&name));
        Self {
            kind,
            name,
            alt_name,
            year,
            date,
            quantity: rng.gen_range(1.0..1000.0),
            code,
            affiliation,
        }
    }
}

/// Specification of one dataset pair to generate.
#[derive(Clone, Debug)]
pub struct PairSpec {
    /// Display name of the pair ("DBpedia - NYTimes").
    pub name: String,
    /// Left (larger, partitioned) dataset profile.
    pub left: DatasetProfile,
    /// Right dataset profile.
    pub right: DatasetProfile,
    /// Individuals present in both datasets (= ground-truth link count).
    pub overlap: usize,
    /// Individuals present only in the left dataset.
    pub left_extra: usize,
    /// Individuals present only in the right dataset.
    pub right_extra: usize,
    /// Entity-kind mixture, weighted.
    pub kinds: Vec<(EntityKind, f64)>,
    /// Generation seed.
    pub seed: u64,
}

/// A generated dataset pair with its ground truth.
#[derive(Clone, Debug)]
pub struct GeneratedPair {
    /// Pair display name.
    pub name: String,
    /// Left dataset.
    pub left: Store,
    /// Right dataset.
    pub right: Store,
    /// Ground-truth links (left entity ↔ right entity).
    pub truth: HashSet<Link>,
}

fn pick_kind(kinds: &[(EntityKind, f64)], rng: &mut StdRng) -> EntityKind {
    let total: f64 = kinds.iter().map(|(_, w)| w).sum();
    let mut t = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
    for &(k, w) in kinds {
        if t < w {
            return k;
        }
        t -= w;
    }
    kinds.last().expect("kind mixture must be non-empty").0
}

fn slug(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect();
    s.truncate(48);
    s
}

/// Renders `ind` into `store` under `profile`, returning the subject id.
fn render(
    ind: &Individual,
    idx: usize,
    store: &mut Store,
    profile: &DatasetProfile,
    interner: &Interner,
    rng: &mut StdRng,
) -> IriId {
    let subject = store.intern_iri(&format!(
        "{}/resource/{}_{idx}",
        profile.namespace,
        slug(&ind.name)
    ));
    let v = &profile.vocab;
    let keep = |rng: &mut StdRng, p: f64| !rng.gen_bool(p);

    // The label is always present — an entity without any name would be
    // unlinkable by any method, including the paper's.
    let label = profile.noise.apply(&ind.name, rng);
    let label_pred = store.intern_iri(&v.label);
    store.insert_literal(subject, label_pred, Literal::str(interner, &label));

    if let (Some(alt_pred), Some(alt)) = (&v.alt_label, &ind.alt_name) {
        if keep(rng, profile.missing_attr) {
            let p = store.intern_iri(alt_pred);
            store.insert_literal(
                subject,
                p,
                Literal::str(interner, &profile.noise.apply(alt, rng)),
            );
        }
    }

    if keep(rng, profile.missing_attr) {
        let year = if rng.gen_bool(profile.year_jitter) {
            jitter_int(ind.year, 1, rng)
        } else {
            ind.year
        };
        let p = store.intern_iri(&v.year);
        let lit = if profile.numbers_as_strings {
            Literal::str(interner, &year.to_string())
        } else {
            Literal::Integer(year)
        };
        store.insert_literal(subject, p, lit);
    }

    if let (Some(date_pred), Some(date)) = (&v.date, ind.date) {
        if keep(rng, profile.missing_attr) {
            let p = store.intern_iri(date_pred);
            store.insert_literal(subject, p, Literal::Date(date));
        }
    }

    if let Some(q_pred) = &v.quantity {
        if keep(rng, profile.missing_attr) {
            let p = store.intern_iri(q_pred);
            let noisy = ind.quantity + rng.gen_range(-0.5..0.5);
            let lit = if profile.numbers_as_strings {
                Literal::str(interner, &format!("{noisy:.1}"))
            } else {
                Literal::float(noisy)
            };
            store.insert_literal(subject, p, lit);
        }
    }

    if let (Some(code_pred), Some(code)) = (&v.code, &ind.code) {
        if keep(rng, profile.missing_attr) {
            let p = store.intern_iri(code_pred);
            store.insert_literal(subject, p, Literal::str(interner, code));
        }
    }

    if let (Some(aff_pred), Some(aff)) = (&v.affiliation, &ind.affiliation) {
        if keep(rng, profile.missing_attr) {
            let p = store.intern_iri(aff_pred);
            store.insert_literal(
                subject,
                p,
                Literal::str(interner, &profile.noise.apply(aff, rng)),
            );
        }
    }

    // rdf:type: a domain class (in the dataset's own naming style) plus the
    // dataset's catch-all top class. Spelling conventions differ across
    // datasets, so the (rdf:type, rdf:type) feature only fires when the
    // classes genuinely resemble each other — occasionally producing the
    // non-distinctive categorical feature §4.2 warns about, which the RL
    // must learn to avoid, without flooding every same-kind pair.
    let type_pred = store.intern_iri(alex_rdf::vocab::RDF_TYPE);
    let class = store.intern_iri(&format!("{}{}", v.class_ns, v.class_style.render(ind.kind)));
    store.insert_iri(subject, type_pred, class);
    let top = store.intern_iri(&v.top_class);
    store.insert_iri(subject, type_pred, top);

    subject
}

/// Generates the pair described by `spec`. Deterministic in `spec.seed`.
pub fn generate(spec: &PairSpec) -> GeneratedPair {
    assert!(!spec.kinds.is_empty(), "kind mixture must be non-empty");
    let interner = Interner::new_shared();
    let mut left = Store::new(interner.clone());
    let mut right = Store::new(interner.clone());
    let mut rng = StdRng::seed_from_u64(spec.seed);

    let mut truth = HashSet::with_capacity(spec.overlap);
    for i in 0..spec.overlap {
        let ind = Individual::sample(pick_kind(&spec.kinds, &mut rng), &mut rng);
        let l = render(&ind, i, &mut left, &spec.left, &interner, &mut rng);
        let r = render(&ind, i, &mut right, &spec.right, &interner, &mut rng);
        truth.insert(Link::new(l, r));
    }
    for i in 0..spec.left_extra {
        let ind = Individual::sample(pick_kind(&spec.kinds, &mut rng), &mut rng);
        render(
            &ind,
            spec.overlap + i,
            &mut left,
            &spec.left,
            &interner,
            &mut rng,
        );
    }
    for i in 0..spec.right_extra {
        let ind = Individual::sample(pick_kind(&spec.kinds, &mut rng), &mut rng);
        render(
            &ind,
            spec.overlap + spec.left_extra + i,
            &mut right,
            &spec.right,
            &interner,
            &mut rng,
        );
    }

    GeneratedPair {
        name: spec.name.clone(),
        left,
        right,
        truth,
    }
}

/// Convenience: both sides of every ground-truth link, for building wrong
/// links in degraders and tests.
pub fn truth_sides(truth: &HashSet<Link>) -> (Vec<IriId>, Vec<IriId>) {
    let mut lefts: Vec<IriId> = truth.iter().map(|l| l.left).collect();
    let mut rights: Vec<IriId> = truth.iter().map(|l| l.right).collect();
    lefts.sort_unstable();
    rights.sort_unstable();
    (lefts, rights)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> PairSpec {
        PairSpec {
            name: "test".into(),
            left: DatasetProfile::dbpedia(),
            right: DatasetProfile::nytimes(),
            overlap: 30,
            left_extra: 20,
            right_extra: 10,
            kinds: vec![(EntityKind::Person, 0.6), (EntityKind::Organization, 0.4)],
            seed: 42,
        }
    }

    #[test]
    fn generates_expected_counts() {
        let pair = generate(&small_spec());
        assert_eq!(pair.truth.len(), 30);
        assert_eq!(pair.left.subject_count(), 50);
        assert_eq!(pair.right.subject_count(), 40);
        assert!(
            pair.left.len() > 100,
            "entities should have several triples"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate(&small_spec());
        let b = generate(&small_spec());
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.left.len(), b.left.len());
        // Triple-for-triple identical.
        for t in a.left.iter() {
            assert!(b.left.contains(t));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&small_spec());
        let b = generate(&PairSpec {
            seed: 43,
            ..small_spec()
        });
        assert_ne!(
            alex_rdf::ntriples::write_string(&a.left),
            alex_rdf::ntriples::write_string(&b.left)
        );
    }

    #[test]
    fn every_entity_has_a_label_and_types() {
        let pair = generate(&small_spec());
        let label = pair.left.intern_iri(&DatasetProfile::dbpedia().vocab.label);
        let type_pred = pair.left.intern_iri(alex_rdf::vocab::RDF_TYPE);
        for s in pair.left.subjects() {
            assert!(
                pair.left.objects(s, label).next().is_some(),
                "missing label"
            );
            assert!(
                pair.left.objects(s, type_pred).count() >= 2,
                "missing types"
            );
        }
    }

    #[test]
    fn truth_links_connect_existing_entities() {
        let pair = generate(&small_spec());
        let left_subjects: HashSet<IriId> = pair.left.subjects().collect();
        let right_subjects: HashSet<IriId> = pair.right.subjects().collect();
        for l in &pair.truth {
            assert!(left_subjects.contains(&l.left));
            assert!(right_subjects.contains(&l.right));
        }
    }

    #[test]
    fn vocabularies_are_disjoint_across_sides() {
        let pair = generate(&small_spec());
        let left_preds: HashSet<_> = pair
            .left
            .predicates()
            .map(|p| pair.left.iri_str(p))
            .collect();
        let right_preds: HashSet<_> = pair
            .right
            .predicates()
            .map(|p| pair.right.iri_str(p))
            .collect();
        let shared: Vec<_> = left_preds.intersection(&right_preds).collect();
        // Only rdf:type may be shared.
        assert!(
            shared.iter().all(|p| &***p == alex_rdf::vocab::RDF_TYPE),
            "unexpected shared predicates: {shared:?}"
        );
    }

    #[test]
    fn truth_sides_extracts_both_columns() {
        let pair = generate(&small_spec());
        let (l, r) = truth_sides(&pair.truth);
        assert_eq!(l.len(), 30);
        assert_eq!(r.len(), 30);
    }

    #[test]
    fn individual_sampling_respects_kind() {
        let mut rng = StdRng::seed_from_u64(alex_rdf::test_seed(1));
        let p = Individual::sample(EntityKind::Person, &mut rng);
        assert!(p.date.is_some());
        let d = Individual::sample(EntityKind::Drug, &mut rng);
        assert!(d.code.is_some());
        assert!(d.date.is_none());
    }
}
