//! # alex-datagen — synthetic linked data for the ALEX experiments
//!
//! The paper evaluates on eight real LOD datasets (Table 1) that are not
//! shippable with this repository. This crate generates structural stand-ins:
//!
//! * a shared world of [`Individual`]s (people, organizations, drugs,
//!   languages, conferences, NBA players, …) rendered into *two* stores
//!   through different [`DatasetProfile`]s — different predicate
//!   vocabularies, typing disciplines, and noise levels — with the overlap
//!   individuals forming the ground-truth `owl:sameAs` links;
//! * [`noise`] operators (typos, token reordering, abbreviation, numeric
//!   jitter) that create the approximate-match landscape ALEX explores;
//! * [`PaperPair`] scenarios reproducing each experiment pair's domain
//!   mixture, relative sizes, and figure-read starting quality;
//! * [`degrade`], which synthesizes an initial candidate set at a target
//!   precision/recall so each figure starts exactly where the paper's does.
//!
//! Everything is deterministic under a seed.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod corrupt;
mod generator;
pub mod names;
pub mod noise;
mod profile;
mod scenarios;

pub use corrupt::{degrade, measure};
pub use generator::{generate, truth_sides, GeneratedPair, Individual, PairSpec};
pub use noise::StringNoise;
pub use profile::{ClassStyle, DatasetProfile, EntityKind, Vocabulary};
pub use scenarios::PaperPair;
