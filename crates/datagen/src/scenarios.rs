//! The paper's dataset pairs (Table 1 and §7) as generation scenarios.
//!
//! Every experiment in the paper links one of the multi-domain datasets
//! (DBpedia, OpenCyc) with a domain dataset (NYTimes, Drugbank, Lexvo,
//! Semantic Web Dogfood, NBA extracts) or with the other multi-domain
//! dataset. Each scenario fixes the dataset profiles, the entity-kind
//! mixture, the (scaled-down) ground-truth size, and the starting quality
//! of the initial candidate links as read off the paper's figures.

use crate::generator::PairSpec;
use crate::profile::{DatasetProfile, EntityKind};

/// One dataset pair from the paper's evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PaperPair {
    /// Figure 2(a): good starting precision, bad recall.
    DbpediaNytimes,
    /// Figure 2(b): bad starting precision, very good recall.
    DbpediaDrugbank,
    /// Figure 2(c): both low.
    DbpediaLexvo,
    /// Figure 3(a).
    OpencycNytimes,
    /// Figure 3(b).
    OpencycDrugbank,
    /// Figure 3(c).
    OpencycLexvo,
    /// Figure 4(a): specific-domain, publications.
    DbpediaSwdf,
    /// Figure 4(b): specific-domain, publications.
    OpencycSwdf,
    /// Figure 4(c): specific-domain, NBA players.
    DbpediaNbaNytimes,
    /// Figure 4(d): specific-domain, NBA players.
    OpencycNbaNytimes,
    /// Figure 8 (Appendix B): the two multi-domain datasets.
    DbpediaOpencyc,
}

impl PaperPair {
    /// Every pair, in paper order.
    pub const ALL: [PaperPair; 11] = [
        PaperPair::DbpediaNytimes,
        PaperPair::DbpediaDrugbank,
        PaperPair::DbpediaLexvo,
        PaperPair::OpencycNytimes,
        PaperPair::OpencycDrugbank,
        PaperPair::OpencycLexvo,
        PaperPair::DbpediaSwdf,
        PaperPair::OpencycSwdf,
        PaperPair::DbpediaNbaNytimes,
        PaperPair::OpencycNbaNytimes,
        PaperPair::DbpediaOpencyc,
    ];

    /// Display label matching the paper's figure captions.
    pub fn label(self) -> &'static str {
        match self {
            PaperPair::DbpediaNytimes => "DBpedia - NYTimes",
            PaperPair::DbpediaDrugbank => "DBpedia - Drugbank",
            PaperPair::DbpediaLexvo => "DBpedia - Lexvo",
            PaperPair::OpencycNytimes => "OpenCyc - NYTimes",
            PaperPair::OpencycDrugbank => "OpenCyc - Drugbank",
            PaperPair::OpencycLexvo => "OpenCyc - Lexvo",
            PaperPair::DbpediaSwdf => "DBpedia - Semantic Web Dogfood",
            PaperPair::OpencycSwdf => "OpenCyc - Semantic Web Dogfood",
            PaperPair::DbpediaNbaNytimes => "DBpedia (NBA) - NYTimes",
            PaperPair::OpencycNbaNytimes => "OpenCyc (NBA) - NYTimes",
            PaperPair::DbpediaOpencyc => "DBpedia - OpenCyc",
        }
    }

    /// Ground-truth link count reported in the paper for this pair.
    pub fn paper_ground_truth(self) -> usize {
        match self {
            PaperPair::DbpediaNytimes => 10_968,
            PaperPair::DbpediaDrugbank => 1_514,
            PaperPair::DbpediaLexvo => 4_364,
            PaperPair::OpencycNytimes => 2_965,
            PaperPair::OpencycDrugbank => 204,
            PaperPair::OpencycLexvo => 383,
            PaperPair::DbpediaSwdf => 461,
            PaperPair::OpencycSwdf => 110,
            PaperPair::DbpediaNbaNytimes => 93,
            PaperPair::OpencycNbaNytimes => 35,
            PaperPair::DbpediaOpencyc => 41_039,
        }
    }

    /// Starting (precision, recall) of the initial candidate set, read off
    /// the episode-0 points of the paper's figures.
    pub fn initial_quality(self) -> (f64, f64) {
        match self {
            PaperPair::DbpediaNytimes => (0.85, 0.20),
            PaperPair::DbpediaDrugbank => (0.28, 0.96),
            PaperPair::DbpediaLexvo => (0.35, 0.30),
            PaperPair::OpencycNytimes => (0.80, 0.25),
            PaperPair::OpencycDrugbank => (0.40, 0.90),
            PaperPair::OpencycLexvo => (0.45, 0.35),
            PaperPair::DbpediaSwdf => (0.90, 0.80),
            PaperPair::OpencycSwdf => (0.85, 0.50),
            PaperPair::DbpediaNbaNytimes => (0.90, 0.50),
            PaperPair::OpencycNbaNytimes => (0.85, 0.45),
            PaperPair::DbpediaOpencyc => (0.90, 0.30),
        }
    }

    /// Whether the paper evaluates this pair in the specific-domain setting
    /// (episode size 10) rather than batch mode (episode size 1000).
    pub fn is_specific_domain(self) -> bool {
        matches!(
            self,
            PaperPair::DbpediaSwdf
                | PaperPair::OpencycSwdf
                | PaperPair::DbpediaNbaNytimes
                | PaperPair::OpencycNbaNytimes
        )
    }

    fn base_overlap(self) -> usize {
        // Paper ground truths scaled to laptop size; the small
        // specific-domain pairs keep their real sizes.
        match self {
            PaperPair::DbpediaNytimes => 550,
            PaperPair::DbpediaDrugbank => 150,
            PaperPair::DbpediaLexvo => 220,
            PaperPair::OpencycNytimes => 150,
            PaperPair::OpencycDrugbank => 60,
            PaperPair::OpencycLexvo => 60,
            PaperPair::DbpediaSwdf => 60,
            PaperPair::OpencycSwdf => 35,
            PaperPair::DbpediaNbaNytimes => 93,
            PaperPair::OpencycNbaNytimes => 35,
            PaperPair::DbpediaOpencyc => 1_000,
        }
    }

    fn profiles(self) -> (DatasetProfile, DatasetProfile) {
        match self {
            PaperPair::DbpediaNytimes | PaperPair::DbpediaNbaNytimes => {
                (DatasetProfile::dbpedia(), DatasetProfile::nytimes())
            }
            PaperPair::DbpediaDrugbank => (DatasetProfile::dbpedia(), DatasetProfile::drugbank()),
            PaperPair::DbpediaLexvo => (DatasetProfile::dbpedia(), DatasetProfile::lexvo()),
            PaperPair::OpencycNytimes | PaperPair::OpencycNbaNytimes => {
                (DatasetProfile::opencyc(), DatasetProfile::nytimes())
            }
            PaperPair::OpencycDrugbank => (DatasetProfile::opencyc(), DatasetProfile::drugbank()),
            PaperPair::OpencycLexvo => (DatasetProfile::opencyc(), DatasetProfile::lexvo()),
            PaperPair::DbpediaSwdf => (DatasetProfile::dbpedia(), DatasetProfile::swdogfood()),
            PaperPair::OpencycSwdf => (DatasetProfile::opencyc(), DatasetProfile::swdogfood()),
            PaperPair::DbpediaOpencyc => (DatasetProfile::dbpedia(), DatasetProfile::opencyc()),
        }
    }

    fn kinds(self) -> Vec<(EntityKind, f64)> {
        match self {
            PaperPair::DbpediaNytimes | PaperPair::OpencycNytimes => vec![
                (EntityKind::Person, 0.5),
                (EntityKind::Organization, 0.25),
                (EntityKind::Place, 0.25),
            ],
            PaperPair::DbpediaDrugbank | PaperPair::OpencycDrugbank => vec![
                (EntityKind::Drug, 0.8),
                (EntityKind::Organization, 0.1),
                (EntityKind::Person, 0.1),
            ],
            PaperPair::DbpediaLexvo | PaperPair::OpencycLexvo => {
                vec![(EntityKind::Language, 0.8), (EntityKind::Place, 0.2)]
            }
            PaperPair::DbpediaSwdf | PaperPair::OpencycSwdf => vec![
                (EntityKind::Conference, 0.4),
                (EntityKind::Organization, 0.4),
                (EntityKind::Person, 0.2),
            ],
            PaperPair::DbpediaNbaNytimes | PaperPair::OpencycNbaNytimes => {
                vec![(EntityKind::Player, 1.0)]
            }
            PaperPair::DbpediaOpencyc => vec![
                (EntityKind::Person, 0.3),
                (EntityKind::Organization, 0.2),
                (EntityKind::Place, 0.2),
                (EntityKind::Drug, 0.1),
                (EntityKind::Language, 0.1),
                (EntityKind::Conference, 0.1),
            ],
        }
    }

    /// Builds the generation spec at `scale` (1.0 = the default laptop
    /// size; larger values stress-test).
    pub fn spec(self, scale: f64, seed: u64) -> PairSpec {
        assert!(scale > 0.0, "scale must be positive");
        let overlap = ((self.base_overlap() as f64 * scale).round() as usize).max(10);
        let (left, right) = self.profiles();
        // The left (multi-domain) dataset is much larger than the overlap;
        // the right dataset is dominated by it.
        let left_extra = (overlap * 2).max(30);
        let right_extra = overlap.max(15);
        PairSpec {
            name: self.label().to_owned(),
            left,
            right,
            overlap,
            left_extra,
            right_extra,
            kinds: self.kinds(),
            seed,
        }
    }

    /// Episode size the paper would use for this pair (§7.2), scaled to the
    /// synthetic ground-truth size: batch mode uses a fixed fraction of the
    /// ground truth per episode (the paper's 1000 of 10 968 ≈ 9%; we use
    /// 25% because the scaled-down candidate sets need proportionally more
    /// cleanup feedback per link to converge in a paper-like number of
    /// episodes), the specific-domain setting uses the paper's literal 10.
    pub fn suggested_episode_size(self, scale: f64) -> usize {
        if self.is_specific_domain() {
            10
        } else {
            let overlap = (self.base_overlap() as f64 * scale).round();
            ((overlap * 0.25).round() as usize).max(25)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;

    #[test]
    fn all_pairs_have_consistent_metadata() {
        for p in PaperPair::ALL {
            assert!(!p.label().is_empty());
            assert!(p.paper_ground_truth() > 0);
            let (pr, rc) = p.initial_quality();
            assert!(pr > 0.0 && pr <= 1.0, "{p:?}");
            assert!(rc > 0.0 && rc <= 1.0, "{p:?}");
            let spec = p.spec(1.0, 1);
            assert!(spec.overlap >= 10);
            assert!(!spec.kinds.is_empty());
            assert!(p.suggested_episode_size(1.0) >= 10);
        }
    }

    #[test]
    fn specific_domain_flags_match_paper() {
        assert!(PaperPair::DbpediaSwdf.is_specific_domain());
        assert!(PaperPair::DbpediaNbaNytimes.is_specific_domain());
        assert!(!PaperPair::DbpediaNytimes.is_specific_domain());
        assert!(!PaperPair::DbpediaOpencyc.is_specific_domain());
    }

    #[test]
    fn scale_scales_overlap() {
        let s1 = PaperPair::DbpediaNytimes.spec(1.0, 1);
        let s2 = PaperPair::DbpediaNytimes.spec(2.0, 1);
        assert_eq!(s2.overlap, s1.overlap * 2);
        let tiny = PaperPair::OpencycNbaNytimes.spec(0.01, 1);
        assert_eq!(tiny.overlap, 10, "overlap is floored");
    }

    #[test]
    fn smallest_pair_generates() {
        let pair = generate(&PaperPair::OpencycNbaNytimes.spec(1.0, 7));
        assert_eq!(pair.truth.len(), 35);
        assert!(pair.left.subject_count() > pair.truth.len());
    }

    #[test]
    fn batch_episode_size_tracks_ratio() {
        // ~9% of the scaled ground truth, mirroring 1000/10968.
        let e = PaperPair::DbpediaNytimes.suggested_episode_size(1.0);
        assert!((130..=145).contains(&e), "episode size {e}");
        assert_eq!(PaperPair::DbpediaNbaNytimes.suggested_episode_size(1.0), 10);
    }
}
