//! Property-based tests for the data generator and degraders.

use std::collections::HashSet;

use alex_datagen::{degrade, generate, measure, DatasetProfile, EntityKind, PairSpec, PaperPair};
use alex_rdf::{Interner, IriId, Link};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_spec() -> impl Strategy<Value = PairSpec> {
    (2usize..40, 0usize..30, 0usize..30, any::<u64>()).prop_map(
        |(overlap, left_extra, right_extra, seed)| PairSpec {
            name: "prop".into(),
            left: DatasetProfile::dbpedia(),
            right: DatasetProfile::nytimes(),
            overlap,
            left_extra,
            right_extra,
            kinds: vec![
                (EntityKind::Person, 0.5),
                (EntityKind::Organization, 0.3),
                (EntityKind::Place, 0.2),
            ],
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Entity counts always match the spec, ground truth links connect
    /// existing entities, and every entity has at least a label and types.
    #[test]
    fn generated_pairs_are_well_formed(spec in arb_spec()) {
        let pair = generate(&spec);
        prop_assert_eq!(pair.truth.len(), spec.overlap);
        prop_assert_eq!(pair.left.subject_count(), spec.overlap + spec.left_extra);
        prop_assert_eq!(pair.right.subject_count(), spec.overlap + spec.right_extra);

        let left_entities: HashSet<IriId> = pair.left.subjects().collect();
        let right_entities: HashSet<IriId> = pair.right.subjects().collect();
        for l in &pair.truth {
            prop_assert!(left_entities.contains(&l.left));
            prop_assert!(right_entities.contains(&l.right));
        }
        for s in pair.left.subjects() {
            prop_assert!(pair.left.entity(s).arity() >= 3, "label + 2 type triples minimum");
        }
    }

    /// Generation is a pure function of the spec.
    #[test]
    fn generation_is_deterministic(spec in arb_spec()) {
        let a = generate(&spec);
        let b = generate(&spec);
        prop_assert_eq!(a.truth, b.truth);
        prop_assert_eq!(a.left.len(), b.left.len());
        prop_assert_eq!(
            alex_rdf::ntriples::write_string(&a.right),
            alex_rdf::ntriples::write_string(&b.right)
        );
    }

    /// The degrader lands within tolerance of any requested quality, for
    /// any truth size where the target is representable.
    #[test]
    fn degrader_hits_targets(
        n in 20usize..300,
        precision in 0.2f64..1.0,
        recall in 0.1f64..1.0,
        seed in any::<u64>(),
    ) {
        let interner = Interner::new();
        let truth: HashSet<Link> = (0..n)
            .map(|k| {
                Link::new(
                    IriId(interner.intern(&format!("l{k}"))),
                    IriId(interner.intern(&format!("r{k}"))),
                )
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let cand = degrade(&truth, precision, recall, &mut rng);
        let (p, r) = measure(&cand, &truth);
        prop_assert!((r - recall).abs() < 0.08, "recall {r} vs target {recall}");
        // Precision can deviate when the wrong-link pool saturates (tiny
        // truths at extreme targets), but must stay close normally.
        let max_wrong = n * n - n;
        let wanted_wrong = (recall * n as f64 / precision - recall * n as f64).round() as usize;
        if wanted_wrong < max_wrong / 2 {
            prop_assert!((p - precision).abs() < 0.12, "precision {p} vs target {precision}");
        }
        // No duplicates ever.
        let set: HashSet<Link> = cand.iter().copied().collect();
        prop_assert_eq!(set.len(), cand.len());
    }

    /// Paper pairs generate at any scale ≥ 0.1 with consistent truth size.
    #[test]
    fn paper_pairs_scale(scale in 0.1f64..1.5, seed in any::<u64>()) {
        let kind = PaperPair::OpencycDrugbank;
        let spec = kind.spec(scale, seed);
        let pair = generate(&spec);
        prop_assert_eq!(pair.truth.len(), spec.overlap);
        prop_assert!(pair.truth.len() >= 10, "overlap floor");
    }
}
