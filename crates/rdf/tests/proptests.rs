//! Property-based tests for the RDF substrate.

use alex_rdf::{ntriples, Date, Interner, Literal, Store, Term, Triple};
use proptest::prelude::*;

fn arb_iri() -> impl Strategy<Value = String> {
    "[a-z]{1,8}".prop_map(|s| format!("http://example.org/{s}"))
}

fn arb_literal_value() -> impl Strategy<Value = String> {
    // Include characters that must be escaped.
    proptest::string::string_regex("[ -~éλ\\t\\n\"\\\\]{0,24}").unwrap()
}

prop_compose! {
    fn arb_date()(year in 1i32..=2500, month in 1u8..=12, day in 1u8..=28) -> Date {
        Date::new(year, month, day).expect("day <= 28 is always valid")
    }
}

#[derive(Clone, Debug)]
enum ObjSpec {
    Iri(String),
    Str(String),
    Lang(String, String),
    Int(i64),
    Float(f64),
    Bool(bool),
    Date(Date),
}

fn arb_obj() -> impl Strategy<Value = ObjSpec> {
    prop_oneof![
        arb_iri().prop_map(ObjSpec::Iri),
        arb_literal_value().prop_map(ObjSpec::Str),
        (arb_literal_value(), "[a-z]{2}").prop_map(|(v, l)| ObjSpec::Lang(v, l)),
        any::<i64>().prop_map(ObjSpec::Int),
        (-1.0e12f64..1.0e12).prop_map(ObjSpec::Float),
        any::<bool>().prop_map(ObjSpec::Bool),
        arb_date().prop_map(ObjSpec::Date),
    ]
}

fn build_store(specs: &[(String, String, ObjSpec)]) -> Store {
    let interner = Interner::new_shared();
    let mut store = Store::new(interner.clone());
    for (s, p, o) in specs {
        let s = store.intern_iri(s);
        let p = store.intern_iri(p);
        let term: Term = match o {
            ObjSpec::Iri(i) => Term::Iri(store.intern_iri(i)),
            ObjSpec::Str(v) => Literal::str(&interner, v).into(),
            ObjSpec::Lang(v, l) => Literal::LangStr {
                value: interner.intern(v),
                lang: interner.intern(l),
            }
            .into(),
            ObjSpec::Int(i) => Literal::Integer(*i).into(),
            ObjSpec::Float(f) => Literal::float(*f).into(),
            ObjSpec::Bool(b) => Literal::Boolean(*b).into(),
            ObjSpec::Date(d) => Literal::Date(*d).into(),
        };
        store.insert(Triple::new(s, p, term));
    }
    store
}

proptest! {
    /// Serialize → parse returns exactly the same triple set.
    #[test]
    fn ntriples_round_trip(specs in proptest::collection::vec((arb_iri(), arb_iri(), arb_obj()), 0..40)) {
        let s1 = build_store(&specs);
        let text = ntriples::write_string(&s1);
        let mut s2 = Store::new(s1.interner().clone());
        ntriples::read_str(&text, &mut s2).expect("own output must re-parse");
        prop_assert_eq!(s1.len(), s2.len());
        for t in s1.iter() {
            prop_assert!(s2.contains(t));
        }
    }

    /// Every pattern query returns exactly the triples a brute-force scan finds.
    #[test]
    fn pattern_matches_brute_force(
        specs in proptest::collection::vec((arb_iri(), arb_iri(), arb_obj()), 1..30),
        s_bound: bool, p_bound: bool, o_bound: bool, pick in 0usize..30
    ) {
        let store = build_store(&specs);
        let probe = *store.iter().nth(pick % store.len()).unwrap();
        let s = s_bound.then_some(probe.subject);
        let p = p_bound.then_some(probe.predicate);
        let o = o_bound.then_some(probe.object);
        let got: Vec<Triple> = store.match_pattern(s, p, o).copied().collect();
        let want: Vec<Triple> = store
            .iter()
            .filter(|t| {
                s.is_none_or(|s| s == t.subject)
                    && p.is_none_or(|p| p == t.predicate)
                    && o.is_none_or(|o| o == t.object)
            })
            .copied()
            .collect();
        let got_set: std::collections::HashSet<_> = got.iter().copied().collect();
        let want_set: std::collections::HashSet<_> = want.iter().copied().collect();
        prop_assert_eq!(got_set, want_set);
        prop_assert!(!got.is_empty(), "probe triple itself must match");
    }

    /// Date day numbers are strictly monotone in chronological order.
    #[test]
    fn date_day_number_monotone(a in arb_date(), b in arb_date()) {
        if a < b {
            prop_assert!(a.day_number() < b.day_number());
        } else if a == b {
            prop_assert_eq!(a.day_number(), b.day_number());
        } else {
            prop_assert!(a.day_number() > b.day_number());
        }
    }

    /// Date lexical forms round-trip.
    #[test]
    fn date_parse_round_trip(d in arb_date()) {
        prop_assert_eq!(Date::parse(&d.to_string()).unwrap(), d);
    }

    /// The Turtle parser accepts everything the N-Triples serializer
    /// emits (N-Triples is a syntactic subset of Turtle).
    #[test]
    fn turtle_parses_ntriples_output(specs in proptest::collection::vec((arb_iri(), arb_iri(), arb_obj()), 0..30)) {
        let s1 = build_store(&specs);
        let text = alex_rdf::ntriples::write_string(&s1);
        let mut s2 = Store::new(s1.interner().clone());
        alex_rdf::turtle::read_str(&text, &mut s2).expect("turtle must accept N-Triples");
        prop_assert_eq!(s1.len(), s2.len());
        for t in s1.iter() {
            prop_assert!(s2.contains(t));
        }
    }

    /// Interner ids are stable and dense under arbitrary workloads.
    #[test]
    fn interner_ids_dense(keys in proptest::collection::vec("[a-z]{1,6}", 1..60)) {
        let interner = Interner::new();
        let mut first = std::collections::HashMap::new();
        for k in &keys {
            let id = interner.intern(k);
            let prev = first.entry(k.clone()).or_insert(id);
            prop_assert_eq!(*prev, id);
            prop_assert_eq!(&*interner.resolve(id), k.as_str());
        }
        prop_assert_eq!(interner.len(), first.len());
    }
}
