//! A fast, non-cryptographic hasher for the store's internal indexes.
//!
//! The triple store hashes every inserted triple into four structures
//! (the dedup set and three position indexes), so hashing dominates bulk
//! loads. The keys are dense interner ids and small fixed-shape terms —
//! there is no untrusted-key DoS surface worth SipHash's cost — so the
//! indexes use this multiply-rotate hasher (the same construction rustc
//! uses for its interned-id tables) instead of the default hasher.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher over machine words: each write folds the input
/// into the state with a rotate, xor, and multiply by a large odd
/// constant. Quality is ample for interner-id keys; speed is the point.
#[derive(Default, Clone)]
pub struct FastHasher {
    hash: u64,
}

/// Knuth's 2^64 / φ multiplier; any large odd constant with mixed bits
/// works, this one is conventional.
const K: u64 = 0x9E37_79B9_7F4A_7C15;

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // The multiply mixes into high bits; fold them back down so
        // HashMap's low-bit bucket masking sees the mixed bits.
        self.hash ^ (self.hash >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "a" and "a\0" can't collide.
            self.add(u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FastHasher`].
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed with [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// A `HashSet` keyed with [`FastHasher`].
pub type FastSet<T> = HashSet<T, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        FastBuildHasher::default().hash_one(v)
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&"abc"), hash_of(&"abc"));
    }

    #[test]
    fn nearby_values_spread() {
        // Dense interner ids are the common key; consecutive ids must not
        // collide in the low bits HashMap buckets by.
        let mut low_bits = FastSet::default();
        for id in 0u32..1024 {
            low_bits.insert(hash_of(&id) & 0xFFF);
        }
        assert!(
            low_bits.len() > 900,
            "only {} distinct buckets",
            low_bits.len()
        );
    }

    #[test]
    fn length_is_part_of_byte_stream_hashes() {
        assert_ne!(hash_of(&[1u8, 0][..]), hash_of(&[1u8, 0, 0][..]));
        assert_ne!(hash_of(&b"a"[..]), hash_of(&b"a\0"[..]));
    }
}
