//! The RDF value model: IRIs, typed literals, terms, triples.

use std::fmt;
use std::sync::Arc;

use crate::date::Date;
use crate::interner::{Interner, StrId};

/// Identifier of an interned IRI (or blank-node label).
///
/// A thin wrapper over [`StrId`] that documents intent: subjects and
/// predicates are always IRIs in this workspace.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IriId(pub StrId);

impl IriId {
    /// The raw dense index of the underlying interned string.
    #[inline]
    pub fn index(self) -> usize {
        self.0.index()
    }
}

impl fmt::Debug for IriId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IriId({})", self.0 .0)
    }
}

/// An `f64` stored by its bit pattern so literals can be `Eq + Hash`.
///
/// NaNs are canonicalized on construction, and `-0.0` is normalized to
/// `0.0`, so bitwise equality coincides with semantic equality for every
/// value a literal can hold.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct FloatBits(u64);

impl FloatBits {
    /// Wraps a float, canonicalizing NaN and negative zero.
    pub fn new(value: f64) -> Self {
        if value.is_nan() {
            Self(f64::NAN.to_bits())
        } else if value == 0.0 {
            Self(0.0_f64.to_bits())
        } else {
            Self(value.to_bits())
        }
    }

    /// The wrapped float value.
    #[inline]
    pub fn get(self) -> f64 {
        f64::from_bits(self.0)
    }
}

impl PartialOrd for FloatBits {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for FloatBits {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.get().total_cmp(&other.get())
    }
}

impl fmt::Debug for FloatBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FloatBits({})", self.get())
    }
}

impl From<f64> for FloatBits {
    fn from(v: f64) -> Self {
        Self::new(v)
    }
}

/// A typed RDF literal.
///
/// Carrying parsed values (not lexical forms) lets the similarity layer
/// dispatch on type — the "generic similarity function that depends on the
/// type of the attributes" of Section 4.1 — without re-parsing on every
/// comparison.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Literal {
    /// A plain string (`xsd:string` or untyped).
    Str(StrId),
    /// A language-tagged string (`"foo"@en`).
    LangStr {
        /// Interned string value.
        value: StrId,
        /// Interned lowercase language tag.
        lang: StrId,
    },
    /// An `xsd:integer` (and friends: `xsd:int`, `xsd:long`, …).
    Integer(i64),
    /// An `xsd:double` / `xsd:float` / `xsd:decimal`.
    Float(FloatBits),
    /// An `xsd:boolean`.
    Boolean(bool),
    /// An `xsd:date`.
    Date(Date),
}

impl Literal {
    /// Convenience constructor interning a plain string value.
    pub fn str(interner: &Interner, value: &str) -> Self {
        Literal::Str(interner.intern(value))
    }

    /// Convenience constructor for a float literal.
    pub fn float(value: f64) -> Self {
        Literal::Float(FloatBits::new(value))
    }

    /// The string value, if this is a plain or language-tagged string.
    pub fn as_str_id(&self) -> Option<StrId> {
        match self {
            Literal::Str(id) | Literal::LangStr { value: id, .. } => Some(*id),
            _ => None,
        }
    }

    /// A coarse type tag, used by similarity dispatch and statistics.
    pub fn kind(&self) -> LiteralKind {
        match self {
            Literal::Str(_) => LiteralKind::Str,
            Literal::LangStr { .. } => LiteralKind::LangStr,
            Literal::Integer(_) => LiteralKind::Integer,
            Literal::Float(_) => LiteralKind::Float,
            Literal::Boolean(_) => LiteralKind::Boolean,
            Literal::Date(_) => LiteralKind::Date,
        }
    }

    /// Renders the literal's lexical form (without quotes or datatype).
    pub fn lexical(&self, interner: &Interner) -> Arc<str> {
        match self {
            Literal::Str(id) | Literal::LangStr { value: id, .. } => interner.resolve(*id),
            Literal::Integer(i) => Arc::from(i.to_string().as_str()),
            Literal::Float(fb) => Arc::from(format_float(fb.get()).as_str()),
            Literal::Boolean(b) => Arc::from(if *b { "true" } else { "false" }),
            Literal::Date(d) => Arc::from(d.to_string().as_str()),
        }
    }
}

/// Formats a float so that integral values keep a trailing `.0`, matching
/// `xsd:double` canonical-ish output and guaranteeing re-parse as a float.
pub(crate) fn format_float(v: f64) -> String {
    if v.is_finite() && v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// Discriminant of [`Literal`] without payload.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum LiteralKind {
    /// Plain string.
    Str,
    /// Language-tagged string.
    LangStr,
    /// Integer.
    Integer,
    /// Floating point.
    Float,
    /// Boolean.
    Boolean,
    /// Calendar date.
    Date,
}

/// An RDF term in object position: an IRI or a literal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Term {
    /// A resource identified by IRI.
    Iri(IriId),
    /// A typed literal value.
    Literal(Literal),
}

impl Term {
    /// The IRI id, if this term is an IRI.
    pub fn as_iri(&self) -> Option<IriId> {
        match self {
            Term::Iri(id) => Some(*id),
            Term::Literal(_) => None,
        }
    }

    /// The literal, if this term is a literal.
    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Iri(_) => None,
            Term::Literal(l) => Some(l),
        }
    }
}

impl From<Literal> for Term {
    fn from(l: Literal) -> Self {
        Term::Literal(l)
    }
}

impl From<IriId> for Term {
    fn from(id: IriId) -> Self {
        Term::Iri(id)
    }
}

/// One RDF statement. Subjects and predicates are IRIs (blank-node subjects
/// are interned under their `_:label` spelling).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Triple {
    /// Subject IRI.
    pub subject: IriId,
    /// Predicate IRI.
    pub predicate: IriId,
    /// Object term.
    pub object: Term,
}

impl Triple {
    /// Creates a triple.
    pub fn new(subject: IriId, predicate: IriId, object: impl Into<Term>) -> Self {
        Self {
            subject,
            predicate,
            object: object.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_bits_canonicalize_nan_and_zero() {
        assert_eq!(FloatBits::new(f64::NAN), FloatBits::new(-f64::NAN));
        assert_eq!(FloatBits::new(0.0), FloatBits::new(-0.0));
        assert_eq!(FloatBits::new(1.5).get(), 1.5);
    }

    #[test]
    fn float_bits_order_is_total() {
        let mut v = vec![
            FloatBits::new(3.0),
            FloatBits::new(-1.0),
            FloatBits::new(2.0),
        ];
        v.sort();
        let got: Vec<f64> = v.into_iter().map(FloatBits::get).collect();
        assert_eq!(got, vec![-1.0, 2.0, 3.0]);
    }

    #[test]
    fn literal_kind_and_accessors() {
        let interner = Interner::new();
        let s = Literal::str(&interner, "hello");
        assert_eq!(s.kind(), LiteralKind::Str);
        assert!(s.as_str_id().is_some());
        assert_eq!(Literal::Integer(3).kind(), LiteralKind::Integer);
        assert_eq!(Literal::Integer(3).as_str_id(), None);
        let lang = Literal::LangStr {
            value: interner.intern("bonjour"),
            lang: interner.intern("fr"),
        };
        assert_eq!(lang.kind(), LiteralKind::LangStr);
        assert_eq!(&*interner.resolve(lang.as_str_id().unwrap()), "bonjour");
    }

    #[test]
    fn lexical_forms() {
        let interner = Interner::new();
        assert_eq!(&*Literal::str(&interner, "x").lexical(&interner), "x");
        assert_eq!(&*Literal::Integer(-7).lexical(&interner), "-7");
        assert_eq!(&*Literal::float(2.0).lexical(&interner), "2.0");
        assert_eq!(&*Literal::float(2.5).lexical(&interner), "2.5");
        assert_eq!(&*Literal::Boolean(true).lexical(&interner), "true");
        let d = Date::new(1984, 12, 30).unwrap();
        assert_eq!(&*Literal::Date(d).lexical(&interner), "1984-12-30");
    }

    #[test]
    fn term_accessors() {
        let interner = Interner::new();
        let iri = IriId(interner.intern("http://example.org/x"));
        let t: Term = iri.into();
        assert_eq!(t.as_iri(), Some(iri));
        assert!(t.as_literal().is_none());
        let t: Term = Literal::Integer(1).into();
        assert!(t.as_iri().is_none());
        assert_eq!(t.as_literal(), Some(&Literal::Integer(1)));
    }
}
