//! N-Triples 1.1 parsing and serialization.
//!
//! The parser is line-oriented and streaming: it never buffers more than one
//! line, so arbitrarily large dumps load in constant memory (beyond the
//! store itself). Typed literals whose datatype is a recognized XSD type are
//! parsed into their value-space representation ([`crate::Literal`]); all
//! other datatypes fall back to plain strings of their lexical form, which
//! is what ALEX's string similarity would compare anyway.

use std::io::{BufRead, Write};

use crate::error::RdfError;
use crate::store::Store;
use crate::term::{format_float, IriId, Literal, Term, Triple};
use crate::vocab;
use crate::Date;

/// Parses one N-Triples document from `reader`, inserting every triple into
/// `store`. Returns the number of *new* triples inserted.
///
/// Comment lines (`#`) and blank lines are skipped. Errors carry the 1-based
/// line number.
pub fn read_into<R: BufRead>(reader: R, store: &mut Store) -> crate::Result<usize> {
    let mut inserted = 0;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| RdfError::Parse {
            line: lineno + 1,
            column: 1,
            token: String::new(),
            message: e.to_string(),
        })?;
        if let Some(triple) = parse_line(&line, lineno + 1, store)? {
            if store.insert(triple) {
                inserted += 1;
            }
        }
    }
    Ok(inserted)
}

/// Parses a complete N-Triples document held in a string.
pub fn read_str(input: &str, store: &mut Store) -> crate::Result<usize> {
    read_into(input.as_bytes(), store)
}

/// Parses a single N-Triples line. Returns `None` for blank/comment lines.
pub fn parse_line(line: &str, lineno: usize, store: &Store) -> crate::Result<Option<Triple>> {
    let mut p = LineParser {
        line,
        pos: 0,
        lineno,
        store,
    };
    p.skip_ws();
    if p.at_end() || p.peek() == Some('#') {
        return Ok(None);
    }
    let subject = p.parse_subject()?;
    p.require_ws()?;
    let predicate = p.parse_iri()?;
    p.require_ws()?;
    let object = p.parse_object()?;
    p.skip_ws();
    p.expect('.')?;
    p.skip_ws();
    if !p.at_end() && p.peek() != Some('#') {
        return Err(p.err("trailing content after '.'"));
    }
    Ok(Some(Triple {
        subject,
        predicate,
        object,
    }))
}

struct LineParser<'a> {
    line: &'a str,
    pos: usize,
    lineno: usize,
    store: &'a Store,
}

impl<'a> LineParser<'a> {
    fn err(&self, message: impl Into<String>) -> RdfError {
        RdfError::Parse {
            line: self.lineno,
            column: self.line[..self.pos].chars().count() + 1,
            token: crate::error::offending_token(self.rest()),
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.line[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn at_end(&self) -> bool {
        self.pos >= self.line.len()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ') | Some('\t')) {
            self.bump();
        }
    }

    fn require_ws(&mut self) -> crate::Result<()> {
        if !matches!(self.peek(), Some(' ') | Some('\t')) {
            return Err(self.err("expected whitespace"));
        }
        self.skip_ws();
        Ok(())
    }

    fn expect(&mut self, c: char) -> crate::Result<()> {
        if self.peek() == Some(c) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected '{c}'")))
        }
    }

    fn parse_subject(&mut self) -> crate::Result<IriId> {
        match self.peek() {
            Some('<') => self.parse_iri(),
            Some('_') => self.parse_blank(),
            _ => Err(self.err("expected IRI or blank node as subject")),
        }
    }

    fn parse_iri(&mut self) -> crate::Result<IriId> {
        self.expect('<')?;
        let start = self.pos;
        loop {
            match self.peek() {
                Some('>') => break,
                Some(c) if c == ' ' || c == '<' => return Err(self.err("invalid character in IRI")),
                Some(_) => {
                    self.bump();
                }
                None => return Err(self.err("unterminated IRI")),
            }
        }
        let iri = &self.line[start..self.pos];
        self.expect('>')?;
        Ok(self.store.intern_iri(iri))
    }

    fn parse_blank(&mut self) -> crate::Result<IriId> {
        let start = self.pos;
        self.expect('_')?;
        self.expect(':')?;
        if !matches!(self.peek(), Some(c) if c.is_alphanumeric()) {
            return Err(self.err("blank node label must start alphanumeric"));
        }
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_' || c == '-' || c == '.')
        {
            self.bump();
        }
        // Roll back a trailing '.' — it terminates the statement.
        if self.line[start..self.pos].ends_with('.') {
            self.pos -= 1;
        }
        Ok(self.store.intern_iri(&self.line[start..self.pos]))
    }

    fn parse_object(&mut self) -> crate::Result<Term> {
        match self.peek() {
            Some('<') => Ok(Term::Iri(self.parse_iri()?)),
            Some('_') => Ok(Term::Iri(self.parse_blank()?)),
            Some('"') => self.parse_literal().map(Term::Literal),
            _ => Err(self.err("expected IRI, blank node, or literal as object")),
        }
    }

    fn parse_literal(&mut self) -> crate::Result<Literal> {
        self.expect('"')?;
        let mut value = String::new();
        loop {
            match self.bump() {
                Some('"') => break,
                Some('\\') => value.push(self.parse_escape()?),
                Some(c) => value.push(c),
                None => return Err(self.err("unterminated string literal")),
            }
        }
        match self.peek() {
            Some('@') => {
                self.bump();
                let start = self.pos;
                while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '-') {
                    self.bump();
                }
                if self.pos == start {
                    return Err(self.err("empty language tag"));
                }
                let lang = self.line[start..self.pos].to_ascii_lowercase();
                Ok(Literal::LangStr {
                    value: self.store.interner().intern(&value),
                    lang: self.store.interner().intern(&lang),
                })
            }
            Some('^') => {
                self.bump();
                self.expect('^')?;
                let dt = self.parse_iri()?;
                let dt_str = self.store.iri_str(dt);
                typed_literal(&value, &dt_str, self.store).map_err(|_| RdfError::InvalidLexical {
                    datatype: dt_str.to_string(),
                    lexical: value.clone(),
                })
            }
            _ => Ok(Literal::Str(self.store.interner().intern(&value))),
        }
    }

    fn parse_escape(&mut self) -> crate::Result<char> {
        match self.bump() {
            Some('t') => Ok('\t'),
            Some('n') => Ok('\n'),
            Some('r') => Ok('\r'),
            Some('b') => Ok('\u{8}'),
            Some('f') => Ok('\u{c}'),
            Some('"') => Ok('"'),
            Some('\'') => Ok('\''),
            Some('\\') => Ok('\\'),
            Some('u') => self.parse_unicode_escape(4),
            Some('U') => self.parse_unicode_escape(8),
            _ => Err(self.err("invalid escape sequence")),
        }
    }

    fn parse_unicode_escape(&mut self, digits: usize) -> crate::Result<char> {
        let mut code: u32 = 0;
        for _ in 0..digits {
            let c = self
                .bump()
                .ok_or_else(|| self.err("truncated unicode escape"))?;
            let d = c
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in unicode escape"))?;
            code = code * 16 + d;
        }
        char::from_u32(code).ok_or_else(|| self.err("unicode escape is not a scalar value"))
    }
}

/// Builds a typed [`Literal`] from a lexical form and datatype IRI.
///
/// Recognized XSD types are parsed into their value space; unknown datatypes
/// degrade to plain strings of the lexical form.
pub fn typed_literal(lexical: &str, datatype: &str, store: &Store) -> crate::Result<Literal> {
    let invalid = || RdfError::InvalidLexical {
        datatype: datatype.to_owned(),
        lexical: lexical.to_owned(),
    };
    match datatype {
        vocab::XSD_INTEGER | vocab::XSD_INT | vocab::XSD_LONG => lexical
            .trim()
            .parse::<i64>()
            .map(Literal::Integer)
            .map_err(|_| invalid()),
        vocab::XSD_DOUBLE | vocab::XSD_FLOAT | vocab::XSD_DECIMAL => lexical
            .trim()
            .parse::<f64>()
            .map(Literal::float)
            .map_err(|_| invalid()),
        vocab::XSD_BOOLEAN => match lexical.trim() {
            "true" | "1" => Ok(Literal::Boolean(true)),
            "false" | "0" => Ok(Literal::Boolean(false)),
            _ => Err(invalid()),
        },
        vocab::XSD_DATE => Date::parse(lexical.trim())
            .map(Literal::Date)
            .map_err(|_| invalid()),
        _ => Ok(Literal::Str(store.interner().intern(lexical))),
    }
}

/// Escapes a string value for inclusion in an N-Triples literal.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
}

/// Renders one term in N-Triples syntax.
pub fn term_to_string(term: &Term, store: &Store) -> String {
    match term {
        Term::Iri(id) => iri_to_string(*id, store),
        Term::Literal(lit) => literal_to_string(lit, store),
    }
}

fn iri_to_string(id: IriId, store: &Store) -> String {
    let s = store.iri_str(id);
    if s.starts_with("_:") {
        s.to_string()
    } else {
        format!("<{s}>")
    }
}

/// Renders one literal in N-Triples syntax, including datatype/lang suffix.
pub fn literal_to_string(lit: &Literal, store: &Store) -> String {
    let mut out = String::new();
    match lit {
        Literal::Str(id) => {
            out.push('"');
            escape_into(&mut out, &store.interner().resolve(*id));
            out.push('"');
        }
        Literal::LangStr { value, lang } => {
            out.push('"');
            escape_into(&mut out, &store.interner().resolve(*value));
            out.push('"');
            out.push('@');
            out.push_str(&store.interner().resolve(*lang));
        }
        Literal::Integer(i) => {
            out.push('"');
            out.push_str(&i.to_string());
            out.push('"');
            out.push_str(&format!("^^<{}>", vocab::XSD_INTEGER));
        }
        Literal::Float(fb) => {
            out.push('"');
            out.push_str(&format_float(fb.get()));
            out.push('"');
            out.push_str(&format!("^^<{}>", vocab::XSD_DOUBLE));
        }
        Literal::Boolean(b) => {
            out.push('"');
            out.push_str(if *b { "true" } else { "false" });
            out.push('"');
            out.push_str(&format!("^^<{}>", vocab::XSD_BOOLEAN));
        }
        Literal::Date(d) => {
            out.push('"');
            out.push_str(&d.to_string());
            out.push('"');
            out.push_str(&format!("^^<{}>", vocab::XSD_DATE));
        }
    }
    out
}

/// Serializes every triple of `store` as N-Triples to `writer`.
pub fn write_store<W: Write>(store: &Store, writer: &mut W) -> std::io::Result<()> {
    for t in store.iter() {
        writeln!(
            writer,
            "{} {} {} .",
            iri_to_string(t.subject, store),
            iri_to_string(t.predicate, store),
            term_to_string(&t.object, store),
        )?;
    }
    Ok(())
}

/// Serializes `store` to an N-Triples string.
pub fn write_string(store: &Store) -> String {
    let mut buf = Vec::new();
    write_store(store, &mut buf).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("N-Triples output is UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Interner;
    use crate::term::LiteralKind;

    fn fresh() -> Store {
        Store::new(Interner::new_shared())
    }

    #[test]
    fn parses_simple_triples() {
        let mut store = fresh();
        let n = read_str(
            "<http://a> <http://p> <http://b> .\n\
             # a comment\n\
             \n\
             <http://a> <http://q> \"hello\" .\n",
            &mut store,
        )
        .unwrap();
        assert_eq!(n, 2);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn parses_typed_literals() {
        let mut store = fresh();
        read_str(
            "<http://a> <http://i> \"42\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n\
             <http://a> <http://f> \"2.5\"^^<http://www.w3.org/2001/XMLSchema#double> .\n\
             <http://a> <http://b> \"true\"^^<http://www.w3.org/2001/XMLSchema#boolean> .\n\
             <http://a> <http://d> \"1984-12-30\"^^<http://www.w3.org/2001/XMLSchema#date> .\n\
             <http://a> <http://u> \"x\"^^<http://unknown/type> .\n",
            &mut store,
        )
        .unwrap();
        let a = store.intern_iri("http://a");
        let kinds: Vec<LiteralKind> = store
            .match_pattern(Some(a), None, None)
            .filter_map(|t| t.object.as_literal().map(Literal::kind))
            .collect();
        assert_eq!(
            kinds,
            vec![
                LiteralKind::Integer,
                LiteralKind::Float,
                LiteralKind::Boolean,
                LiteralKind::Date,
                LiteralKind::Str
            ]
        );
    }

    #[test]
    fn parses_lang_strings_lowercasing_tag() {
        let mut store = fresh();
        read_str("<http://a> <http://p> \"Bonjour\"@FR .\n", &mut store).unwrap();
        let t = store.iter().next().unwrap();
        match t.object.as_literal().unwrap() {
            Literal::LangStr { value, lang } => {
                assert_eq!(&*store.interner().resolve(*value), "Bonjour");
                assert_eq!(&*store.interner().resolve(*lang), "fr");
            }
            other => panic!("expected lang string, got {other:?}"),
        }
    }

    #[test]
    fn parses_escapes() {
        let mut store = fresh();
        read_str(
            r#"<http://a> <http://p> "tab\there \"quoted\" é" ."#,
            &mut store,
        )
        .unwrap();
        let t = store.iter().next().unwrap();
        let id = t.object.as_literal().unwrap().as_str_id().unwrap();
        assert_eq!(&*store.interner().resolve(id), "tab\there \"quoted\" é");
    }

    #[test]
    fn parses_blank_nodes() {
        let mut store = fresh();
        read_str("_:b1 <http://p> _:b2 .\n", &mut store).unwrap();
        let t = store.iter().next().unwrap();
        assert_eq!(&*store.iri_str(t.subject), "_:b1");
        assert_eq!(&*store.iri_str(t.object.as_iri().unwrap()), "_:b2");
    }

    #[test]
    fn blank_node_before_terminating_dot() {
        let mut store = fresh();
        // No space between the blank node and the dot.
        read_str("<http://a> <http://p> _:b1.\n", &mut store).unwrap();
        let t = store.iter().next().unwrap();
        assert_eq!(&*store.iri_str(t.object.as_iri().unwrap()), "_:b1");
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "<http://a> <http://p> .",
            "<http://a> <http://p> \"unterminated .",
            "<http://a <http://p> <http://b> .",
            "<http://a> <http://p> <http://b>",
            "<http://a> <http://p> <http://b> . garbage",
            "\"literal\" <http://p> <http://b> .",
            "<http://a> <http://p> \"x\"@ .",
            "<http://a> <http://p> \"9x\"^^<http://www.w3.org/2001/XMLSchema#integer> .",
        ] {
            let mut store = fresh();
            assert!(read_str(bad, &mut store).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn error_carries_line_number() {
        let mut store = fresh();
        let err = read_str(
            "<http://a> <http://p> <http://b> .\nnot a triple\n",
            &mut store,
        )
        .unwrap_err();
        match err {
            RdfError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn error_carries_column_and_token() {
        let mut store = fresh();
        let err = read_str("<http://a> <http://p> BROKEN .\n", &mut store).unwrap_err();
        match &err {
            RdfError::Parse {
                line,
                column,
                token,
                ..
            } => {
                assert_eq!(*line, 1);
                assert_eq!(*column, 23, "column points at the bad object");
                assert_eq!(token, "BROKEN");
            }
            other => panic!("unexpected error {other:?}"),
        }
        let rendered = err.to_string();
        assert!(rendered.contains("line 1"), "{rendered}");
        assert!(rendered.contains("column 23"), "{rendered}");
        assert!(rendered.contains("\"BROKEN\""), "{rendered}");
    }

    #[test]
    fn error_positions_are_correct_on_crlf_input() {
        let mut store = fresh();
        // CRLF line endings must not shift the line count or leave a
        // stray '\r' inflating the column of errors on later lines.
        let err = read_str(
            "<http://a> <http://p> <http://b> .\r\n<http://a> <http://p> BROKEN .\r\n",
            &mut store,
        )
        .unwrap_err();
        match &err {
            RdfError::Parse {
                line,
                column,
                token,
                ..
            } => {
                assert_eq!(*line, 2);
                assert_eq!(*column, 23, "same column as the LF-only case");
                assert_eq!(token, "BROKEN");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn error_columns_count_chars_not_bytes() {
        let mut store = fresh();
        // 'é' (2 bytes) and '火' (3 bytes) precede the error: 24 chars but
        // 27 bytes come before BROKEN, so a byte-based column would say 28.
        let err = read_str("<http://é/火> <http://p> BROKEN .\n", &mut store).unwrap_err();
        match &err {
            RdfError::Parse { column, token, .. } => {
                assert_eq!(*column, 25, "column counts characters, not bytes");
                assert_eq!(token, "BROKEN");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn error_at_end_of_line_has_empty_token() {
        let mut store = fresh();
        let err = read_str("<http://a> <http://p> <http://b>", &mut store).unwrap_err();
        match &err {
            RdfError::Parse { token, .. } => assert!(token.is_empty()),
            other => panic!("unexpected error {other:?}"),
        }
        assert!(err.to_string().contains("end of input"), "{err}");
    }

    #[test]
    fn round_trip_preserves_triples() {
        let src = "<http://a> <http://p> <http://b> .\n\
                   <http://a> <http://name> \"Ali\\\\ce \\\"quoted\\\"\" .\n\
                   <http://a> <http://age> \"30\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n\
                   <http://a> <http://pi> \"3.5\"^^<http://www.w3.org/2001/XMLSchema#double> .\n\
                   <http://a> <http://born> \"1984-12-30\"^^<http://www.w3.org/2001/XMLSchema#date> .\n\
                   <http://a> <http://ok> \"true\"^^<http://www.w3.org/2001/XMLSchema#boolean> .\n\
                   <http://a> <http://greet> \"hi\"@en .\n";
        let mut s1 = fresh();
        read_str(src, &mut s1).unwrap();
        let out = write_string(&s1);
        let mut s2 = Store::new(s1.interner().clone());
        read_str(&out, &mut s2).unwrap();
        assert_eq!(s1.len(), s2.len());
        for t in s1.iter() {
            assert!(s2.contains(t), "missing after round trip: {t:?}");
        }
    }
}
