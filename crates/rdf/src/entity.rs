//! Entity view: a subject together with its attribute list.
//!
//! Section 4.1 of the paper represents an entity as its set of attributes —
//! pairs of (predicate label, predicate value). [`Entity`] is that view,
//! materialized from a [`crate::Store`].

use crate::term::{IriId, Term};

/// One attribute of an entity: an RDF predicate and its object value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Attribute {
    /// The predicate IRI.
    pub predicate: IriId,
    /// The object value.
    pub object: Term,
}

/// A subject with all its attributes, the unit ALEX builds feature sets from.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Entity {
    /// The entity's IRI.
    pub id: IriId,
    /// All `(predicate, object)` pairs asserted about the entity, in
    /// insertion order.
    pub attributes: Vec<Attribute>,
}

impl Entity {
    /// Creates an entity view from parts.
    pub fn new(id: IriId, attributes: Vec<Attribute>) -> Self {
        Self { id, attributes }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Whether the entity has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// All objects asserted under `predicate`.
    pub fn values_of(&self, predicate: IriId) -> impl Iterator<Item = &Term> {
        self.attributes
            .iter()
            .filter(move |a| a.predicate == predicate)
            .map(|a| &a.object)
    }

    /// The first object asserted under `predicate`, if any.
    pub fn value_of(&self, predicate: IriId) -> Option<&Term> {
        self.values_of(predicate).next()
    }

    /// Distinct predicates of this entity, in first-occurrence order.
    pub fn predicates(&self) -> Vec<IriId> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for a in &self.attributes {
            if seen.insert(a.predicate) {
                out.push(a.predicate);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Interner;
    use crate::term::Literal;

    fn iri(i: &Interner, s: &str) -> IriId {
        IriId(i.intern(s))
    }

    #[test]
    fn accessors() {
        let i = Interner::new();
        let p1 = iri(&i, "p1");
        let p2 = iri(&i, "p2");
        let e = Entity::new(
            iri(&i, "e"),
            vec![
                Attribute {
                    predicate: p1,
                    object: Literal::Integer(1).into(),
                },
                Attribute {
                    predicate: p2,
                    object: Literal::Integer(2).into(),
                },
                Attribute {
                    predicate: p1,
                    object: Literal::Integer(3).into(),
                },
            ],
        );
        assert_eq!(e.arity(), 3);
        assert!(!e.is_empty());
        assert_eq!(e.values_of(p1).count(), 2);
        assert_eq!(e.value_of(p2), Some(&Term::Literal(Literal::Integer(2))));
        assert_eq!(e.predicates(), vec![p1, p2]);
        assert_eq!(e.value_of(iri(&i, "p3")), None);
    }
}
