//! Error type shared by the RDF substrate.

use std::fmt;

/// Errors produced while parsing, validating, or storing RDF data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdfError {
    /// An N-Triples line could not be parsed. Carries the 1-based line
    /// number and a description of what went wrong.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Human-readable description of the syntax problem.
        message: String,
    },
    /// A date literal was lexically well-formed but not a real calendar date.
    InvalidDate {
        /// Year component as written.
        year: i32,
        /// Month component as written.
        month: u8,
        /// Day component as written.
        day: u8,
    },
    /// A literal's lexical form did not match its declared XSD datatype.
    InvalidLexical {
        /// The declared datatype IRI.
        datatype: String,
        /// The lexical form that failed to parse.
        lexical: String,
    },
    /// An operation referenced an id that the interner never issued.
    UnknownId(u32),
}

impl fmt::Display for RdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdfError::Parse { line, message } => {
                write!(f, "N-Triples parse error at line {line}: {message}")
            }
            RdfError::InvalidDate { year, month, day } => {
                write!(f, "invalid calendar date {year:04}-{month:02}-{day:02}")
            }
            RdfError::InvalidLexical { datatype, lexical } => {
                write!(f, "lexical form {lexical:?} is not valid for datatype <{datatype}>")
            }
            RdfError::UnknownId(id) => write!(f, "unknown interned id {id}"),
        }
    }
}

impl std::error::Error for RdfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RdfError::Parse { line: 7, message: "expected '.'".into() };
        assert!(e.to_string().contains("line 7"));
        assert!(e.to_string().contains("expected '.'"));

        let e = RdfError::InvalidDate { year: 2020, month: 2, day: 30 };
        assert_eq!(e.to_string(), "invalid calendar date 2020-02-30");

        let e = RdfError::InvalidLexical {
            datatype: "http://www.w3.org/2001/XMLSchema#integer".into(),
            lexical: "abc".into(),
        };
        assert!(e.to_string().contains("abc"));
        assert!(RdfError::UnknownId(3).to_string().contains('3'));
    }
}
