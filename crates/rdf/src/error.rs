//! Error type shared by the RDF substrate.

use std::fmt;

/// Errors produced while parsing, validating, or storing RDF data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdfError {
    /// An N-Triples or Turtle document could not be parsed. Carries the
    /// 1-based position of the failure, the offending token, and a
    /// description of what went wrong.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// 1-based column (in characters) where parsing failed.
        column: usize,
        /// The token at the failure position; empty at end of input.
        token: String,
        /// Human-readable description of the syntax problem.
        message: String,
    },
    /// A date literal was lexically well-formed but not a real calendar date.
    InvalidDate {
        /// Year component as written.
        year: i32,
        /// Month component as written.
        month: u8,
        /// Day component as written.
        day: u8,
    },
    /// A literal's lexical form did not match its declared XSD datatype.
    InvalidLexical {
        /// The declared datatype IRI.
        datatype: String,
        /// The lexical form that failed to parse.
        lexical: String,
    },
    /// An operation referenced an id that the interner never issued.
    UnknownId(u32),
}

impl fmt::Display for RdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdfError::Parse {
                line,
                column,
                token,
                message,
            } => {
                write!(f, "parse error at line {line}, column {column}")?;
                if token.is_empty() {
                    write!(f, " (end of input)")?;
                } else {
                    write!(f, " near {token:?}")?;
                }
                write!(f, ": {message}")
            }
            RdfError::InvalidDate { year, month, day } => {
                write!(f, "invalid calendar date {year:04}-{month:02}-{day:02}")
            }
            RdfError::InvalidLexical { datatype, lexical } => {
                write!(
                    f,
                    "lexical form {lexical:?} is not valid for datatype <{datatype}>"
                )
            }
            RdfError::UnknownId(id) => write!(f, "unknown interned id {id}"),
        }
    }
}

impl std::error::Error for RdfError {}

/// Extracts the offending token at a failure position: the first
/// whitespace-delimited chunk of `rest`, capped at 20 characters.
pub(crate) fn offending_token(rest: &str) -> String {
    let chunk = rest.split_whitespace().next().unwrap_or("");
    if chunk.chars().count() > 20 {
        let cut: String = chunk.chars().take(20).collect();
        format!("{cut}…")
    } else {
        chunk.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RdfError::Parse {
            line: 7,
            column: 12,
            token: "BROKEN".into(),
            message: "expected '.'".into(),
        };
        assert!(e.to_string().contains("line 7"));
        assert!(e.to_string().contains("column 12"));
        assert!(e.to_string().contains("\"BROKEN\""));
        assert!(e.to_string().contains("expected '.'"));

        let e = RdfError::Parse {
            line: 2,
            column: 30,
            token: String::new(),
            message: "unterminated IRI".into(),
        };
        assert!(e.to_string().contains("end of input"));

        let e = RdfError::InvalidDate {
            year: 2020,
            month: 2,
            day: 30,
        };
        assert_eq!(e.to_string(), "invalid calendar date 2020-02-30");

        let e = RdfError::InvalidLexical {
            datatype: "http://www.w3.org/2001/XMLSchema#integer".into(),
            lexical: "abc".into(),
        };
        assert!(e.to_string().contains("abc"));
        assert!(RdfError::UnknownId(3).to_string().contains('3'));
    }

    #[test]
    fn offending_token_caps_length() {
        assert_eq!(offending_token("BROKEN rest of line"), "BROKEN");
        assert_eq!(offending_token(""), "");
        assert_eq!(offending_token("   "), "");
        let long = "x".repeat(40);
        let token = offending_token(&long);
        assert_eq!(token.chars().count(), 21);
        assert!(token.ends_with('…'));
    }
}
