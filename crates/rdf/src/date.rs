//! A minimal proleptic-Gregorian calendar date.
//!
//! `xsd:date` literals are frequent in knowledge bases (birth dates,
//! publication dates) and the paper's generic similarity function treats
//! dates as their own type, so we carry them parsed rather than as strings.

use crate::error::RdfError;

/// A calendar date in the proleptic Gregorian calendar.
///
/// Supports years in `-9999..=9999`, which covers every date found in the
/// paper's datasets. Ordering is chronological.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Date {
    year: i32,
    month: u8,
    day: u8,
}

const DAYS_IN_MONTH: [u8; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_month(year: i32, month: u8) -> u8 {
    if month == 2 && is_leap(year) {
        29
    } else {
        DAYS_IN_MONTH[(month - 1) as usize]
    }
}

impl Date {
    /// Creates a date, validating that it exists on the calendar.
    pub fn new(year: i32, month: u8, day: u8) -> Result<Self, RdfError> {
        let valid = (-9999..=9999).contains(&year)
            && (1..=12).contains(&month)
            && day >= 1
            && day <= days_in_month(year, month);
        if valid {
            Ok(Self { year, month, day })
        } else {
            Err(RdfError::InvalidDate { year, month, day })
        }
    }

    /// Year component (may be negative for BCE dates).
    #[inline]
    pub fn year(self) -> i32 {
        self.year
    }

    /// Month component in `1..=12`.
    #[inline]
    pub fn month(self) -> u8 {
        self.month
    }

    /// Day-of-month component in `1..=31`.
    #[inline]
    pub fn day(self) -> u8 {
        self.day
    }

    /// Days since 0000-03-01 (an arbitrary fixed origin), suitable for
    /// computing distances between dates.
    ///
    /// Uses the standard civil-from-days construction (Howard Hinnant's
    /// algorithm), exact over the whole supported range.
    pub fn day_number(self) -> i64 {
        let y = i64::from(self.year) - i64::from(self.month <= 2);
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400; // [0, 399]
        let m = i64::from(self.month);
        let d = i64::from(self.day);
        let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        era * 146097 + doe
    }

    /// Absolute distance between two dates, in days.
    pub fn days_between(self, other: Date) -> i64 {
        (self.day_number() - other.day_number()).abs()
    }

    /// Parses an `xsd:date` lexical form: `[-]YYYY-MM-DD`, ignoring any
    /// trailing timezone designator (`Z` or `±HH:MM`), which `xsd:date`
    /// permits but ALEX's similarity functions do not need.
    pub fn parse(lexical: &str) -> Result<Self, RdfError> {
        let invalid = || RdfError::InvalidLexical {
            datatype: crate::vocab::XSD_DATE.to_owned(),
            lexical: lexical.to_owned(),
        };
        let (neg, rest) = match lexical.strip_prefix('-') {
            Some(r) => (true, r),
            None => (false, lexical),
        };
        // Strip an optional timezone suffix.
        let rest = rest
            .strip_suffix('Z')
            .or_else(|| {
                rest.get(..rest.len().saturating_sub(6)).filter(|_| {
                    let tail = &rest[rest.len().saturating_sub(6)..];
                    tail.len() == 6
                        && (tail.starts_with('+') || tail.starts_with('-'))
                        && tail.as_bytes()[3] == b':'
                })
            })
            .unwrap_or(rest);
        let mut parts = rest.splitn(3, '-');
        let (y, m, d) = match (parts.next(), parts.next(), parts.next()) {
            (Some(y), Some(m), Some(d)) if y.len() >= 4 && m.len() == 2 && d.len() == 2 => {
                (y, m, d)
            }
            _ => return Err(invalid()),
        };
        let year: i32 = y.parse().map_err(|_| invalid())?;
        let month: u8 = m.parse().map_err(|_| invalid())?;
        let day: u8 = d.parse().map_err(|_| invalid())?;
        Date::new(if neg { -year } else { year }, month, day).map_err(|_| invalid())
    }
}

impl std::fmt::Display for Date {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.year < 0 {
            write!(f, "-{:04}-{:02}-{:02}", -self.year, self.month, self.day)
        } else {
            write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_impossible_dates() {
        assert!(Date::new(2020, 2, 29).is_ok());
        assert!(Date::new(2021, 2, 29).is_err());
        assert!(Date::new(1900, 2, 29).is_err()); // 100-year non-leap
        assert!(Date::new(2000, 2, 29).is_ok()); // 400-year leap
        assert!(Date::new(2020, 0, 1).is_err());
        assert!(Date::new(2020, 13, 1).is_err());
        assert!(Date::new(2020, 4, 31).is_err());
        assert!(Date::new(10_000, 1, 1).is_err());
    }

    #[test]
    fn day_numbers_are_consecutive_across_boundaries() {
        let pairs = [
            (
                Date::new(2019, 12, 31).unwrap(),
                Date::new(2020, 1, 1).unwrap(),
            ),
            (
                Date::new(2020, 2, 28).unwrap(),
                Date::new(2020, 2, 29).unwrap(),
            ),
            (
                Date::new(2020, 2, 29).unwrap(),
                Date::new(2020, 3, 1).unwrap(),
            ),
            (
                Date::new(1999, 12, 31).unwrap(),
                Date::new(2000, 1, 1).unwrap(),
            ),
        ];
        for (a, b) in pairs {
            assert_eq!(b.day_number() - a.day_number(), 1, "{a} -> {b}");
        }
    }

    #[test]
    fn known_epoch_offsets() {
        // 1970-01-01 relative to 1969-01-01 is 365 days (1969 not a leap year).
        let a = Date::new(1969, 1, 1).unwrap();
        let b = Date::new(1970, 1, 1).unwrap();
        assert_eq!(a.days_between(b), 365);
        // A leap year spans 366 days.
        let a = Date::new(2020, 1, 1).unwrap();
        let b = Date::new(2021, 1, 1).unwrap();
        assert_eq!(a.days_between(b), 366);
    }

    #[test]
    fn parse_round_trips_display() {
        for s in ["1984-12-30", "0001-01-01", "-0044-03-15", "2013-06-20"] {
            let d = Date::parse(s).unwrap();
            assert_eq!(d.to_string(), s);
        }
    }

    #[test]
    fn parse_accepts_timezones() {
        assert_eq!(
            Date::parse("2013-06-20Z").unwrap(),
            Date::new(2013, 6, 20).unwrap()
        );
        assert_eq!(
            Date::parse("2013-06-20+05:00").unwrap(),
            Date::new(2013, 6, 20).unwrap()
        );
        assert_eq!(
            Date::parse("2013-06-20-05:00").unwrap(),
            Date::new(2013, 6, 20).unwrap()
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in [
            "",
            "2013",
            "2013-6-20",
            "13-06-20",
            "2013-06",
            "20a3-06-20",
            "2013-02-30",
        ] {
            assert!(Date::parse(s).is_err(), "{s:?} should not parse");
        }
    }

    #[test]
    fn ordering_is_chronological() {
        let a = Date::new(1984, 12, 30).unwrap();
        let b = Date::new(1985, 1, 2).unwrap();
        assert!(a < b);
    }
}
