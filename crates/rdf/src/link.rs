//! Cross-dataset entity links (`owl:sameAs` statements).
//!
//! A [`Link`] asserts that an entity of the *left* dataset and an entity of
//! the *right* dataset denote the same real-world individual. Links are the
//! currency of the whole workspace: PARIS produces them, ALEX curates them,
//! the federated query engine traverses them.

use crate::store::Store;
use crate::term::{IriId, Term, Triple};
use crate::vocab;

/// An `owl:sameAs` link between an entity of the left dataset and an entity
/// of the right dataset.
///
/// `Link` is ordered: `(a, b)` links dataset-1's `a` to dataset-2's `b` and
/// is *not* the same link as `(b, a)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Link {
    /// Entity in the left (first) dataset.
    pub left: IriId,
    /// Entity in the right (second) dataset.
    pub right: IriId,
}

impl Link {
    /// Creates a link.
    pub fn new(left: IriId, right: IriId) -> Self {
        Self { left, right }
    }

    /// Renders the link as an `owl:sameAs` triple (interning the predicate
    /// into the store's interner on first use).
    pub fn to_triple(self, store: &Store) -> Triple {
        let same_as = store.intern_iri(vocab::OWL_SAME_AS);
        Triple::new(self.left, same_as, Term::Iri(self.right))
    }
}

/// A link with the confidence score its producer assigned.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ScoredLink {
    /// The entity pair.
    pub link: Link,
    /// Producer confidence in `[0, 1]`.
    pub score: f64,
}

impl ScoredLink {
    /// Creates a scored link.
    pub fn new(link: Link, score: f64) -> Self {
        debug_assert!((0.0..=1.0).contains(&score), "score out of range: {score}");
        Self { link, score }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Interner;

    #[test]
    fn link_identity_and_ordering() {
        let i = Interner::new();
        let a = IriId(i.intern("a"));
        let b = IriId(i.intern("b"));
        assert_eq!(Link::new(a, b), Link::new(a, b));
        assert_ne!(Link::new(a, b), Link::new(b, a));
    }

    #[test]
    fn to_triple_uses_owl_same_as() {
        let store = Store::new(Interner::new_shared());
        let a = store.intern_iri("http://ex/a");
        let b = store.intern_iri("http://ex/b");
        let t = Link::new(a, b).to_triple(&store);
        assert_eq!(&*store.iri_str(t.predicate), vocab::OWL_SAME_AS);
        assert_eq!(t.subject, a);
        assert_eq!(t.object.as_iri(), Some(b));
    }

    #[test]
    fn scored_link_holds_score() {
        let i = Interner::new();
        let l = Link::new(IriId(i.intern("a")), IriId(i.intern("b")));
        let s = ScoredLink::new(l, 0.97);
        assert_eq!(s.link, l);
        assert!((s.score - 0.97).abs() < f64::EPSILON);
    }
}
