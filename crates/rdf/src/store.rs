//! An indexed in-memory triple store.
//!
//! The store maintains three single-position indexes (subject, predicate,
//! object). Pattern matching picks the most selective available index and
//! filters the remaining positions; at ALEX's dataset scales this is within
//! noise of compound indexes while using far less memory.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use crate::entity::{Attribute, Entity};
use crate::interner::Interner;
use crate::term::{IriId, Term, Triple};

/// An append-only, duplicate-free, indexed set of triples.
///
/// Stores in a linking task share one [`Interner`] so ids are comparable
/// across datasets.
///
/// # Examples
///
/// ```
/// use alex_rdf::{Interner, Literal, Store, Term};
///
/// let interner = Interner::new_shared();
/// let mut store = Store::new(interner.clone());
/// let s = store.intern_iri("http://example.org/lebron");
/// let p = store.intern_iri("http://example.org/name");
/// store.insert_literal(s, p, Literal::str(&interner, "LeBron James"));
///
/// assert_eq!(store.len(), 1);
/// assert_eq!(store.match_pattern(Some(s), None, None).count(), 1);
/// ```
#[derive(Clone)]
pub struct Store {
    interner: Arc<Interner>,
    triples: Vec<Triple>,
    seen: HashSet<Triple>,
    by_subject: HashMap<IriId, Vec<u32>>,
    by_predicate: HashMap<IriId, Vec<u32>>,
    by_object: HashMap<Term, Vec<u32>>,
    /// Distinct subjects in first-insertion order, so iteration is
    /// deterministic across runs (important for seeded experiments).
    subject_order: Vec<IriId>,
}

impl Store {
    /// Creates an empty store sharing `interner`.
    pub fn new(interner: Arc<Interner>) -> Self {
        Self {
            interner,
            triples: Vec::new(),
            seen: HashSet::new(),
            by_subject: HashMap::new(),
            by_predicate: HashMap::new(),
            by_object: HashMap::new(),
            subject_order: Vec::new(),
        }
    }

    /// The shared interner.
    pub fn interner(&self) -> &Arc<Interner> {
        &self.interner
    }

    /// Interns an IRI string, returning its id.
    pub fn intern_iri(&self, iri: &str) -> IriId {
        IriId(self.interner.intern(iri))
    }

    /// Resolves an IRI id back to its string.
    pub fn iri_str(&self, id: IriId) -> Arc<str> {
        self.interner.resolve(id.0)
    }

    /// Inserts a triple. Returns `true` if the triple was new.
    pub fn insert(&mut self, triple: Triple) -> bool {
        if !self.seen.insert(triple) {
            return false;
        }
        let idx =
            u32::try_from(self.triples.len()).expect("store overflow: more than u32::MAX triples");
        if !self.by_subject.contains_key(&triple.subject) {
            self.subject_order.push(triple.subject);
        }
        self.by_subject.entry(triple.subject).or_default().push(idx);
        self.by_predicate
            .entry(triple.predicate)
            .or_default()
            .push(idx);
        self.by_object.entry(triple.object).or_default().push(idx);
        self.triples.push(triple);
        true
    }

    /// Inserts `(subject, predicate, object-IRI)`.
    pub fn insert_iri(&mut self, subject: IriId, predicate: IriId, object: IriId) -> bool {
        self.insert(Triple::new(subject, predicate, object))
    }

    /// Inserts `(subject, predicate, literal)`.
    pub fn insert_literal(
        &mut self,
        subject: IriId,
        predicate: IriId,
        literal: crate::term::Literal,
    ) -> bool {
        self.insert(Triple::new(subject, predicate, literal))
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// Whether the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Whether the exact triple is present.
    pub fn contains(&self, triple: &Triple) -> bool {
        self.seen.contains(triple)
    }

    /// All triples, in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, Triple> {
        self.triples.iter()
    }

    /// Distinct subjects, in first-insertion order.
    pub fn subjects(&self) -> impl Iterator<Item = IriId> + '_ {
        self.subject_order.iter().copied()
    }

    /// Number of distinct subjects.
    pub fn subject_count(&self) -> usize {
        self.subject_order.len()
    }

    /// Distinct predicates (arbitrary but stable-within-a-run order).
    pub fn predicates(&self) -> impl Iterator<Item = IriId> + '_ {
        self.by_predicate.keys().copied()
    }

    /// Triples matching the given pattern; `None` positions are wildcards.
    ///
    /// Picks the most selective bound position (subject, then object, then
    /// predicate) as the driving index and filters the rest.
    pub fn match_pattern(
        &self,
        subject: Option<IriId>,
        predicate: Option<IriId>,
        object: Option<Term>,
    ) -> TripleIter<'_> {
        let inner = if let Some(s) = subject {
            match self.by_subject.get(&s) {
                Some(ids) => IterInner::Indices(ids.iter()),
                None => IterInner::Empty,
            }
        } else if let Some(o) = object {
            match self.by_object.get(&o) {
                Some(ids) => IterInner::Indices(ids.iter()),
                None => IterInner::Empty,
            }
        } else if let Some(p) = predicate {
            match self.by_predicate.get(&p) {
                Some(ids) => IterInner::Indices(ids.iter()),
                None => IterInner::Empty,
            }
        } else {
            IterInner::All(self.triples.iter())
        };
        TripleIter {
            store: self,
            inner,
            subject,
            predicate,
            object,
        }
    }

    /// Objects of `(subject, predicate, ?o)`.
    pub fn objects(&self, subject: IriId, predicate: IriId) -> impl Iterator<Item = Term> + '_ {
        self.match_pattern(Some(subject), Some(predicate), None)
            .map(|t| t.object)
    }

    /// Subjects of `(?s, predicate, object)`.
    pub fn subjects_with(
        &self,
        predicate: IriId,
        object: Term,
    ) -> impl Iterator<Item = IriId> + '_ {
        self.match_pattern(None, Some(predicate), Some(object))
            .map(|t| t.subject)
    }

    /// Materializes the [`Entity`] view of `subject` (empty attribute list
    /// if the subject is unknown).
    pub fn entity(&self, subject: IriId) -> Entity {
        let attributes = self
            .match_pattern(Some(subject), None, None)
            .map(|t| Attribute {
                predicate: t.predicate,
                object: t.object,
            })
            .collect();
        Entity::new(subject, attributes)
    }

    /// Summary statistics, used by the Table 1 experiment.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            triples: self.triples.len(),
            subjects: self.by_subject.len(),
            predicates: self.by_predicate.len(),
            objects: self.by_object.len(),
        }
    }
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("Store")
            .field("triples", &s.triples)
            .field("subjects", &s.subjects)
            .field("predicates", &s.predicates)
            .finish()
    }
}

/// Summary counts for a [`Store`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StoreStats {
    /// Total triples.
    pub triples: usize,
    /// Distinct subjects.
    pub subjects: usize,
    /// Distinct predicates.
    pub predicates: usize,
    /// Distinct objects.
    pub objects: usize,
}

enum IterInner<'a> {
    Indices(std::slice::Iter<'a, u32>),
    All(std::slice::Iter<'a, Triple>),
    Empty,
}

/// Iterator over triples matching a pattern. See [`Store::match_pattern`].
pub struct TripleIter<'a> {
    store: &'a Store,
    inner: IterInner<'a>,
    subject: Option<IriId>,
    predicate: Option<IriId>,
    object: Option<Term>,
}

impl<'a> TripleIter<'a> {
    fn matches(&self, t: &Triple) -> bool {
        self.subject.is_none_or(|s| s == t.subject)
            && self.predicate.is_none_or(|p| p == t.predicate)
            && self.object.is_none_or(|o| o == t.object)
    }
}

impl<'a> Iterator for TripleIter<'a> {
    type Item = &'a Triple;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let t: &'a Triple = match &mut self.inner {
                IterInner::Indices(it) => {
                    let idx = *it.next()?;
                    &self.store.triples[idx as usize]
                }
                IterInner::All(it) => it.next()?,
                IterInner::Empty => return None,
            };
            if self.matches(t) {
                return Some(t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Literal;

    fn small_store() -> (Store, IriId, IriId, IriId, IriId) {
        let interner = Interner::new_shared();
        let mut store = Store::new(interner.clone());
        let a = store.intern_iri("http://ex/a");
        let b = store.intern_iri("http://ex/b");
        let name = store.intern_iri("http://ex/name");
        let age = store.intern_iri("http://ex/age");
        store.insert_literal(a, name, Literal::str(&interner, "Alice"));
        store.insert_literal(a, age, Literal::Integer(30));
        store.insert_literal(b, name, Literal::str(&interner, "Bob"));
        (store, a, b, name, age)
    }

    #[test]
    fn insert_deduplicates() {
        let (mut store, a, _, name, _) = small_store();
        let lit = Literal::str(store.interner(), "Alice");
        assert!(!store.insert_literal(a, name, lit));
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn pattern_matching_all_shapes() {
        let (store, a, b, name, age) = small_store();
        let alice: Term = Literal::str(store.interner(), "Alice").into();

        assert_eq!(store.match_pattern(None, None, None).count(), 3);
        assert_eq!(store.match_pattern(Some(a), None, None).count(), 2);
        assert_eq!(store.match_pattern(None, Some(name), None).count(), 2);
        assert_eq!(store.match_pattern(None, None, Some(alice)).count(), 1);
        assert_eq!(store.match_pattern(Some(a), Some(name), None).count(), 1);
        assert_eq!(store.match_pattern(Some(b), Some(age), None).count(), 0);
        assert_eq!(
            store
                .match_pattern(Some(a), Some(name), Some(alice))
                .count(),
            1
        );
        // Unknown ids short-circuit to empty.
        let ghost = store.intern_iri("http://ex/ghost");
        assert_eq!(store.match_pattern(Some(ghost), None, None).count(), 0);
        assert_eq!(store.match_pattern(None, Some(ghost), None).count(), 0);
    }

    #[test]
    fn objects_and_subjects_with() {
        let (store, a, b, name, _) = small_store();
        let objs: Vec<Term> = store.objects(a, name).collect();
        assert_eq!(objs.len(), 1);
        let bob: Term = Literal::str(store.interner(), "Bob").into();
        let subs: Vec<IriId> = store.subjects_with(name, bob).collect();
        assert_eq!(subs, vec![b]);
    }

    #[test]
    fn entity_view() {
        let (store, a, _, name, age) = small_store();
        let e = store.entity(a);
        assert_eq!(e.id, a);
        assert_eq!(e.arity(), 2);
        assert_eq!(e.predicates(), vec![name, age]);
        let ghost = store.intern_iri("http://ex/ghost");
        assert!(store.entity(ghost).is_empty());
    }

    #[test]
    fn subjects_in_insertion_order() {
        let (store, a, b, _, _) = small_store();
        let subs: Vec<IriId> = store.subjects().collect();
        assert_eq!(subs, vec![a, b]);
        assert_eq!(store.subject_count(), 2);
    }

    #[test]
    fn stats() {
        let (store, ..) = small_store();
        let s = store.stats();
        assert_eq!(s.triples, 3);
        assert_eq!(s.subjects, 2);
        assert_eq!(s.predicates, 2);
        assert_eq!(s.objects, 3);
    }

    #[test]
    fn contains_and_iter() {
        let (store, a, _, name, _) = small_store();
        let t = Triple::new(a, name, Literal::str(store.interner(), "Alice"));
        assert!(store.contains(&t));
        assert_eq!(store.iter().count(), store.len());
    }
}
