//! An indexed in-memory triple store.
//!
//! The store maintains three single-position indexes (subject, predicate,
//! object). Pattern matching picks the most selective available index and
//! filters the remaining positions; at ALEX's dataset scales this is within
//! noise of compound indexes while using far less memory.

use std::collections::hash_map::Entry;
use std::sync::Arc;

use crate::entity::{Attribute, Entity};
use crate::hash::{FastMap, FastSet};
use crate::interner::Interner;
use crate::term::{IriId, Term, Triple};

/// An append-only, duplicate-free, indexed set of triples.
///
/// Stores in a linking task share one [`Interner`] so ids are comparable
/// across datasets.
///
/// # Examples
///
/// ```
/// use alex_rdf::{Interner, Literal, Store, Term};
///
/// let interner = Interner::new_shared();
/// let mut store = Store::new(interner.clone());
/// let s = store.intern_iri("http://example.org/lebron");
/// let p = store.intern_iri("http://example.org/name");
/// store.insert_literal(s, p, Literal::str(&interner, "LeBron James"));
///
/// assert_eq!(store.len(), 1);
/// assert_eq!(store.match_pattern(Some(s), None, None).count(), 1);
/// ```
#[derive(Clone)]
pub struct Store {
    interner: Arc<Interner>,
    triples: Vec<Triple>,
    /// Exact-triple dedup set. Built eagerly by [`Store::insert`], but
    /// *lazily* after a bulk load ([`Store::from_triples`]): loaded
    /// datasets are read-mostly, so the set is only materialized if the
    /// store is mutated again. `seen_valid` says whether it is current;
    /// when it is not, [`Store::contains`] answers from the subject index
    /// instead.
    seen: FastSet<Triple>,
    seen_valid: bool,
    by_subject: FastMap<IriId, Postings>,
    by_predicate: FastMap<IriId, Postings>,
    by_object: FastMap<Term, Postings>,
    /// Distinct subjects in first-insertion order, so iteration is
    /// deterministic across runs (important for seeded experiments).
    subject_order: Vec<IriId>,
}

impl Store {
    /// Creates an empty store sharing `interner`.
    pub fn new(interner: Arc<Interner>) -> Self {
        Self {
            interner,
            triples: Vec::new(),
            seen: FastSet::default(),
            seen_valid: true,
            by_subject: FastMap::default(),
            by_predicate: FastMap::default(),
            by_object: FastMap::default(),
            subject_order: Vec::new(),
        }
    }

    /// Pre-sizes the store for `additional` more triples, so a bulk load
    /// (snapshot decode, parser with a known count) pays no incremental
    /// rehash growth. Sizing is heuristic for the keyed indexes: objects
    /// are assumed mostly distinct, subjects far fewer than triples.
    pub fn reserve(&mut self, additional: usize) {
        self.triples.reserve(additional);
        self.seen.reserve(additional);
        self.by_object.reserve(additional);
        self.by_subject.reserve(additional / 4);
    }

    /// Builds a store from a triple list in one shot — the bulk-load path
    /// used by the binary snapshot decoder.
    ///
    /// Two things make this much faster than an [`Store::insert`] loop:
    /// the dedup set is left to lazy materialization (duplicate freedom is
    /// verified from the subject index instead, bounded by subject arity),
    /// and on machines with enough cores the three position indexes are
    /// built on separate threads. The result is observably identical to
    /// inserting the triples in order: same triple order, same subject
    /// first-insertion order, same dedup semantics (if `triples` contains
    /// duplicates — possible only with a crafted snapshot — the build
    /// falls back to the sequential insert loop).
    pub fn from_triples(interner: Arc<Interner>, triples: Vec<Triple>) -> Self {
        const PARALLEL_THRESHOLD: usize = 4096;
        let sequential = |triples: Vec<Triple>| {
            let mut store = Self::new(Arc::clone(&interner));
            store.reserve(triples.len());
            for t in triples {
                store.insert(t);
            }
            store
        };
        if triples.len() < PARALLEL_THRESHOLD {
            return sequential(triples);
        }
        assert!(
            u32::try_from(triples.len()).is_ok(),
            "store overflow: more than u32::MAX triples"
        );
        let n = triples.len();
        let ts: &[Triple] = &triples;

        let build_subject = || {
            // Subjects arrive in runs; the run count bounds the distinct
            // subjects tightly, so the map can be sized exactly instead
            // of growing through rehashes.
            let runs = 1 + ts
                .windows(2)
                .filter(|w| w[0].subject != w[1].subject)
                .count();
            let mut by_subject: FastMap<IriId, Postings> = FastMap::default();
            by_subject.reserve(runs);
            let mut subject_order = Vec::with_capacity(runs);
            // Triples arrive grouped into runs of equal subjects (that is
            // how entities are serialized), so hash each run once instead
            // of once per triple.
            let mut i = 0usize;
            while i < n {
                let s = ts[i].subject;
                let mut j = i + 1;
                while j < n && ts[j].subject == s {
                    j += 1;
                }
                match by_subject.entry(s) {
                    Entry::Vacant(slot) => {
                        subject_order.push(s);
                        if j - i == 1 {
                            slot.insert(Postings::One(i as u32));
                        } else {
                            slot.insert(Postings::Many(Box::new((i as u32..j as u32).collect())));
                        }
                    }
                    Entry::Occupied(mut slot) => {
                        let postings = slot.get_mut();
                        for k in i..j {
                            postings.push(k as u32);
                        }
                    }
                }
                i = j;
            }
            (by_subject, subject_order)
        };
        let build_predicate = || {
            let mut by_predicate: FastMap<IriId, Postings> = FastMap::default();
            for (i, t) in ts.iter().enumerate() {
                by_predicate
                    .entry(t.predicate)
                    .and_modify(|p| p.push(i as u32))
                    .or_insert(Postings::One(i as u32));
            }
            by_predicate
        };
        let build_object = || {
            let mut by_object: FastMap<Term, Postings> = FastMap::default();
            by_object.reserve(n);
            for (i, t) in ts.iter().enumerate() {
                by_object
                    .entry(t.object)
                    .and_modify(|p| p.push(i as u32))
                    .or_insert(Postings::One(i as u32));
            }
            by_object
        };

        let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
        let ((by_subject, subject_order), by_predicate, by_object) = if threads >= 3 {
            std::thread::scope(|scope| {
                let subject_builder = scope.spawn(build_subject);
                let predicate_builder = scope.spawn(build_predicate);
                let by_object = build_object();
                (
                    subject_builder.join().expect("subject builder panicked"),
                    predicate_builder
                        .join()
                        .expect("predicate builder panicked"),
                    by_object,
                )
            })
        } else {
            (build_subject(), build_predicate(), build_object())
        };

        if subject_lists_have_duplicates(ts, &by_subject) {
            return sequential(triples);
        }
        Self {
            interner,
            triples,
            seen: FastSet::default(),
            seen_valid: false,
            by_subject,
            by_predicate,
            by_object,
            subject_order,
        }
    }

    /// The shared interner.
    pub fn interner(&self) -> &Arc<Interner> {
        &self.interner
    }

    /// Interns an IRI string, returning its id.
    pub fn intern_iri(&self, iri: &str) -> IriId {
        IriId(self.interner.intern(iri))
    }

    /// Resolves an IRI id back to its string.
    pub fn iri_str(&self, id: IriId) -> Arc<str> {
        self.interner.resolve(id.0)
    }

    /// Materializes the dedup set after a bulk load, once, on the first
    /// mutation that needs it.
    fn build_seen(&mut self) {
        self.seen.reserve(self.triples.len());
        for &t in &self.triples {
            self.seen.insert(t);
        }
        self.seen_valid = true;
    }

    /// Inserts a triple. Returns `true` if the triple was new.
    pub fn insert(&mut self, triple: Triple) -> bool {
        if !self.seen_valid {
            self.build_seen();
        }
        if !self.seen.insert(triple) {
            return false;
        }
        let idx =
            u32::try_from(self.triples.len()).expect("store overflow: more than u32::MAX triples");
        match self.by_subject.entry(triple.subject) {
            Entry::Vacant(slot) => {
                self.subject_order.push(triple.subject);
                slot.insert(Postings::One(idx));
            }
            Entry::Occupied(mut slot) => slot.get_mut().push(idx),
        }
        self.by_predicate
            .entry(triple.predicate)
            .and_modify(|p| p.push(idx))
            .or_insert(Postings::One(idx));
        self.by_object
            .entry(triple.object)
            .and_modify(|p| p.push(idx))
            .or_insert(Postings::One(idx));
        self.triples.push(triple);
        true
    }

    /// Inserts `(subject, predicate, object-IRI)`.
    pub fn insert_iri(&mut self, subject: IriId, predicate: IriId, object: IriId) -> bool {
        self.insert(Triple::new(subject, predicate, object))
    }

    /// Inserts `(subject, predicate, literal)`.
    pub fn insert_literal(
        &mut self,
        subject: IriId,
        predicate: IriId,
        literal: crate::term::Literal,
    ) -> bool {
        self.insert(Triple::new(subject, predicate, literal))
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// Whether the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Whether the exact triple is present.
    pub fn contains(&self, triple: &Triple) -> bool {
        if self.seen_valid {
            self.seen.contains(triple)
        } else {
            // Post-bulk-load: answer from the subject index (bounded by
            // the subject's arity) instead of materializing the set.
            self.match_pattern(
                Some(triple.subject),
                Some(triple.predicate),
                Some(triple.object),
            )
            .next()
            .is_some()
        }
    }

    /// All triples, in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, Triple> {
        self.triples.iter()
    }

    /// Distinct subjects, in first-insertion order.
    pub fn subjects(&self) -> impl Iterator<Item = IriId> + '_ {
        self.subject_order.iter().copied()
    }

    /// Number of distinct subjects.
    pub fn subject_count(&self) -> usize {
        self.subject_order.len()
    }

    /// Distinct predicates (arbitrary but stable-within-a-run order).
    pub fn predicates(&self) -> impl Iterator<Item = IriId> + '_ {
        self.by_predicate.keys().copied()
    }

    /// Triples matching the given pattern; `None` positions are wildcards.
    ///
    /// Picks the most selective bound position (subject, then object, then
    /// predicate) as the driving index and filters the rest.
    pub fn match_pattern(
        &self,
        subject: Option<IriId>,
        predicate: Option<IriId>,
        object: Option<Term>,
    ) -> TripleIter<'_> {
        let inner = if let Some(s) = subject {
            match self.by_subject.get(&s) {
                Some(ids) => IterInner::Indices(ids.as_slice().iter()),
                None => IterInner::Empty,
            }
        } else if let Some(o) = object {
            match self.by_object.get(&o) {
                Some(ids) => IterInner::Indices(ids.as_slice().iter()),
                None => IterInner::Empty,
            }
        } else if let Some(p) = predicate {
            match self.by_predicate.get(&p) {
                Some(ids) => IterInner::Indices(ids.as_slice().iter()),
                None => IterInner::Empty,
            }
        } else {
            IterInner::All(self.triples.iter())
        };
        TripleIter {
            store: self,
            inner,
            subject,
            predicate,
            object,
        }
    }

    /// Objects of `(subject, predicate, ?o)`.
    pub fn objects(&self, subject: IriId, predicate: IriId) -> impl Iterator<Item = Term> + '_ {
        self.match_pattern(Some(subject), Some(predicate), None)
            .map(|t| t.object)
    }

    /// Subjects of `(?s, predicate, object)`.
    pub fn subjects_with(
        &self,
        predicate: IriId,
        object: Term,
    ) -> impl Iterator<Item = IriId> + '_ {
        self.match_pattern(None, Some(predicate), Some(object))
            .map(|t| t.subject)
    }

    /// Materializes the [`Entity`] view of `subject` (empty attribute list
    /// if the subject is unknown).
    pub fn entity(&self, subject: IriId) -> Entity {
        let attributes = self
            .match_pattern(Some(subject), None, None)
            .map(|t| Attribute {
                predicate: t.predicate,
                object: t.object,
            })
            .collect();
        Entity::new(subject, attributes)
    }

    /// Summary statistics, used by the Table 1 experiment.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            triples: self.triples.len(),
            subjects: self.by_subject.len(),
            predicates: self.by_predicate.len(),
            objects: self.by_object.len(),
        }
    }
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("Store")
            .field("triples", &s.triples)
            .field("subjects", &s.subjects)
            .field("predicates", &s.predicates)
            .finish()
    }
}

/// Summary counts for a [`Store`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StoreStats {
    /// Total triples.
    pub triples: usize,
    /// Distinct subjects.
    pub subjects: usize,
    /// Distinct predicates.
    pub predicates: usize,
    /// Distinct objects.
    pub objects: usize,
}

/// Whether any subject's posting list holds two triples with the same
/// predicate and object — i.e. whether `triples` has an exact duplicate.
/// Short lists (the overwhelming majority; RDF subject arity is small)
/// are checked pairwise with no allocation; long lists get a scratch set
/// so a crafted input with one enormous subject stays linear.
fn subject_lists_have_duplicates(
    triples: &[Triple],
    by_subject: &FastMap<IriId, Postings>,
) -> bool {
    const PAIRWISE_CAP: usize = 16;
    for ids in by_subject.values() {
        let ids = ids.as_slice();
        if ids.len() <= 1 {
            continue;
        }
        if ids.len() <= PAIRWISE_CAP {
            for (k, &a) in ids.iter().enumerate() {
                let ta = triples[a as usize];
                for &b in &ids[k + 1..] {
                    let tb = triples[b as usize];
                    if ta.predicate == tb.predicate && ta.object == tb.object {
                        return true;
                    }
                }
            }
        } else {
            let mut po: FastSet<(IriId, Term)> = FastSet::default();
            po.reserve(ids.len());
            for &i in ids {
                let t = triples[i as usize];
                if !po.insert((t.predicate, t.object)) {
                    return true;
                }
            }
        }
    }
    false
}

/// A posting list of triple indices. Most index keys (distinct objects
/// especially) occur exactly once, so the single-entry case is stored
/// inline and only multi-entry keys pay for a heap allocation — this
/// roughly halves the allocation count of a bulk load. The `Vec` is
/// boxed to keep the enum at 16 bytes, which keeps the hash-table slots
/// compact (more of the index stays in cache during bulk builds).
#[derive(Clone)]
enum Postings {
    One(u32),
    // The indirection is the point: a bare Vec would grow the enum to
    // 32 bytes and bloat every single-entry slot.
    #[allow(clippy::box_collection)]
    Many(Box<Vec<u32>>),
}

impl Postings {
    fn push(&mut self, idx: u32) {
        match self {
            Postings::One(first) => *self = Postings::Many(Box::new(vec![*first, idx])),
            Postings::Many(v) => v.push(idx),
        }
    }

    fn as_slice(&self) -> &[u32] {
        match self {
            Postings::One(first) => std::slice::from_ref(first),
            Postings::Many(v) => v.as_slice(),
        }
    }
}

enum IterInner<'a> {
    Indices(std::slice::Iter<'a, u32>),
    All(std::slice::Iter<'a, Triple>),
    Empty,
}

/// Iterator over triples matching a pattern. See [`Store::match_pattern`].
pub struct TripleIter<'a> {
    store: &'a Store,
    inner: IterInner<'a>,
    subject: Option<IriId>,
    predicate: Option<IriId>,
    object: Option<Term>,
}

impl<'a> TripleIter<'a> {
    fn matches(&self, t: &Triple) -> bool {
        self.subject.is_none_or(|s| s == t.subject)
            && self.predicate.is_none_or(|p| p == t.predicate)
            && self.object.is_none_or(|o| o == t.object)
    }
}

impl<'a> Iterator for TripleIter<'a> {
    type Item = &'a Triple;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let t: &'a Triple = match &mut self.inner {
                IterInner::Indices(it) => {
                    let idx = *it.next()?;
                    &self.store.triples[idx as usize]
                }
                IterInner::All(it) => it.next()?,
                IterInner::Empty => return None,
            };
            if self.matches(t) {
                return Some(t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Literal;

    fn small_store() -> (Store, IriId, IriId, IriId, IriId) {
        let interner = Interner::new_shared();
        let mut store = Store::new(interner.clone());
        let a = store.intern_iri("http://ex/a");
        let b = store.intern_iri("http://ex/b");
        let name = store.intern_iri("http://ex/name");
        let age = store.intern_iri("http://ex/age");
        store.insert_literal(a, name, Literal::str(&interner, "Alice"));
        store.insert_literal(a, age, Literal::Integer(30));
        store.insert_literal(b, name, Literal::str(&interner, "Bob"));
        (store, a, b, name, age)
    }

    #[test]
    fn insert_deduplicates() {
        let (mut store, a, _, name, _) = small_store();
        let lit = Literal::str(store.interner(), "Alice");
        assert!(!store.insert_literal(a, name, lit));
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn pattern_matching_all_shapes() {
        let (store, a, b, name, age) = small_store();
        let alice: Term = Literal::str(store.interner(), "Alice").into();

        assert_eq!(store.match_pattern(None, None, None).count(), 3);
        assert_eq!(store.match_pattern(Some(a), None, None).count(), 2);
        assert_eq!(store.match_pattern(None, Some(name), None).count(), 2);
        assert_eq!(store.match_pattern(None, None, Some(alice)).count(), 1);
        assert_eq!(store.match_pattern(Some(a), Some(name), None).count(), 1);
        assert_eq!(store.match_pattern(Some(b), Some(age), None).count(), 0);
        assert_eq!(
            store
                .match_pattern(Some(a), Some(name), Some(alice))
                .count(),
            1
        );
        // Unknown ids short-circuit to empty.
        let ghost = store.intern_iri("http://ex/ghost");
        assert_eq!(store.match_pattern(Some(ghost), None, None).count(), 0);
        assert_eq!(store.match_pattern(None, Some(ghost), None).count(), 0);
    }

    #[test]
    fn objects_and_subjects_with() {
        let (store, a, b, name, _) = small_store();
        let objs: Vec<Term> = store.objects(a, name).collect();
        assert_eq!(objs.len(), 1);
        let bob: Term = Literal::str(store.interner(), "Bob").into();
        let subs: Vec<IriId> = store.subjects_with(name, bob).collect();
        assert_eq!(subs, vec![b]);
    }

    #[test]
    fn entity_view() {
        let (store, a, _, name, age) = small_store();
        let e = store.entity(a);
        assert_eq!(e.id, a);
        assert_eq!(e.arity(), 2);
        assert_eq!(e.predicates(), vec![name, age]);
        let ghost = store.intern_iri("http://ex/ghost");
        assert!(store.entity(ghost).is_empty());
    }

    #[test]
    fn subjects_in_insertion_order() {
        let (store, a, b, _, _) = small_store();
        let subs: Vec<IriId> = store.subjects().collect();
        assert_eq!(subs, vec![a, b]);
        assert_eq!(store.subject_count(), 2);
    }

    #[test]
    fn stats() {
        let (store, ..) = small_store();
        let s = store.stats();
        assert_eq!(s.triples, 3);
        assert_eq!(s.subjects, 2);
        assert_eq!(s.predicates, 2);
        assert_eq!(s.objects, 3);
    }

    #[test]
    fn from_triples_matches_sequential_inserts() {
        // Exercise both the small sequential path and the parallel path
        // (> 4096 triples), with duplicates sprinkled in.
        let interner = Interner::new_shared();
        let p = IriId(interner.intern("http://ex/p"));
        let q = IriId(interner.intern("http://ex/q"));
        let mut triples = Vec::new();
        for i in 0..5000u32 {
            let s = IriId(interner.intern(&format!("http://ex/s{}", i % 700)));
            triples.push(Triple::new(s, p, Literal::Integer(i64::from(i))));
            if i % 17 == 0 {
                triples.push(triples[triples.len() - 1]); // duplicate
            }
            if i % 3 == 0 {
                triples.push(Triple::new(s, q, Literal::Boolean(i % 2 == 0)));
            }
        }
        let mut expected = Store::new(interner.clone());
        for &t in &triples {
            expected.insert(t);
        }
        for len in [10usize, triples.len()] {
            let bulk = Store::from_triples(interner.clone(), triples[..len].to_vec());
            let mut seq = Store::new(interner.clone());
            for &t in &triples[..len] {
                seq.insert(t);
            }
            assert_eq!(bulk.len(), seq.len(), "len {len}");
            assert_eq!(bulk.stats(), seq.stats(), "len {len}");
            assert!(bulk.iter().eq(seq.iter()), "triple order, len {len}");
            assert!(
                bulk.subjects().eq(seq.subjects()),
                "subject order, len {len}"
            );
            // Indexes answer identically through every access path.
            let probe = IriId(interner.intern("http://ex/s123"));
            assert_eq!(
                bulk.match_pattern(Some(probe), None, None).count(),
                seq.match_pattern(Some(probe), None, None).count()
            );
            assert_eq!(
                bulk.match_pattern(None, Some(q), None).count(),
                seq.match_pattern(None, Some(q), None).count()
            );
            let obj: Term = Literal::Integer(42).into();
            assert_eq!(
                bulk.match_pattern(None, None, Some(obj)).count(),
                seq.match_pattern(None, None, Some(obj)).count()
            );
            for &t in &triples[..len] {
                assert!(bulk.contains(&t));
            }
        }

        // Mutating after a duplicate-free bulk load still deduplicates:
        // the lazy dedup set materializes on first insert.
        let unique: Vec<Triple> = expected.iter().copied().collect();
        let mut bulk = Store::from_triples(interner.clone(), unique.clone());
        assert_eq!(bulk.len(), expected.len());
        assert!(!bulk.insert(unique[0]), "re-inserting an existing triple");
        let novel = Triple::new(
            IriId(interner.intern("http://ex/fresh")),
            p,
            Literal::Integer(-1),
        );
        assert!(bulk.insert(novel));
        assert!(bulk.contains(&novel));
        assert_eq!(bulk.len(), expected.len() + 1);
    }

    #[test]
    fn contains_and_iter() {
        let (store, a, _, name, _) = small_store();
        let t = Triple::new(a, name, Literal::str(store.interner(), "Alice"));
        assert!(store.contains(&t));
        assert_eq!(store.iter().count(), store.len());
    }
}
