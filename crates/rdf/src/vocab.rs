//! Well-known vocabulary IRIs used throughout the workspace.

/// `rdf:type`.
pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
/// `rdfs:label`.
pub const RDFS_LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";
/// `owl:sameAs` — the link predicate ALEX curates.
pub const OWL_SAME_AS: &str = "http://www.w3.org/2002/07/owl#sameAs";
/// `owl:Thing` — the non-distinctive categorical value called out in §4.2.
pub const OWL_THING: &str = "http://www.w3.org/2002/07/owl#Thing";

/// `xsd:string`.
pub const XSD_STRING: &str = "http://www.w3.org/2001/XMLSchema#string";
/// `xsd:integer`.
pub const XSD_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
/// `xsd:int`.
pub const XSD_INT: &str = "http://www.w3.org/2001/XMLSchema#int";
/// `xsd:long`.
pub const XSD_LONG: &str = "http://www.w3.org/2001/XMLSchema#long";
/// `xsd:double`.
pub const XSD_DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";
/// `xsd:float`.
pub const XSD_FLOAT: &str = "http://www.w3.org/2001/XMLSchema#float";
/// `xsd:decimal`.
pub const XSD_DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";
/// `xsd:boolean`.
pub const XSD_BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";
/// `xsd:date`.
pub const XSD_DATE: &str = "http://www.w3.org/2001/XMLSchema#date";

#[cfg(test)]
mod tests {
    #[test]
    fn iris_look_like_iris() {
        for iri in [
            super::RDF_TYPE,
            super::RDFS_LABEL,
            super::OWL_SAME_AS,
            super::OWL_THING,
            super::XSD_STRING,
            super::XSD_INTEGER,
            super::XSD_DOUBLE,
            super::XSD_BOOLEAN,
            super::XSD_DATE,
        ] {
            assert!(iri.starts_with("http://"), "{iri}");
            assert!(!iri.contains(' '));
        }
    }
}
