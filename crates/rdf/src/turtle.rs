//! A Turtle 1.1 subset parser.
//!
//! N-Triples covers machine-generated dumps, but most hand-published LOD
//! data ships as Turtle. This parser covers the subset those files use in
//! practice:
//!
//! * `@prefix` / `PREFIX` and `@base` / `BASE` directives;
//! * predicate lists (`;`) and object lists (`,`);
//! * the `a` keyword for `rdf:type`;
//! * IRIs, prefixed names, blank-node labels, and anonymous blank nodes
//!   with property lists (`[ … ]`);
//! * string literals with language tags and datatypes, plus the numeric
//!   (`42`, `1.5`, `1e3`) and boolean shorthands.
//!
//! Out of scope (rejected with a clear error, not silently mangled):
//! collections `( … )`, triple-quoted long strings, and RDF-star.

use crate::error::RdfError;
use crate::ntriples::typed_literal;
use crate::store::Store;
use crate::term::{IriId, Literal, Term, Triple};
use crate::vocab;

/// Parses a Turtle document into `store`. Returns the number of *new*
/// triples inserted.
pub fn read_str(input: &str, store: &mut Store) -> crate::Result<usize> {
    let mut p = TurtleParser {
        input,
        pos: 0,
        line: 1,
        base: String::new(),
        prefixes: std::collections::HashMap::new(),
        blank_counter: 0,
        inserted: 0,
    };
    p.parse_document(store)?;
    Ok(p.inserted)
}

struct TurtleParser<'a> {
    input: &'a str,
    pos: usize,
    line: usize,
    base: String,
    prefixes: std::collections::HashMap<String, String>,
    blank_counter: usize,
    inserted: usize,
}

impl<'a> TurtleParser<'a> {
    fn err(&self, message: impl Into<String>) -> RdfError {
        let line_start = self.input[..self.pos].rfind('\n').map_or(0, |i| i + 1);
        RdfError::Parse {
            line: self.line,
            column: self.input[line_start..self.pos].chars().count() + 1,
            token: crate::error::offending_token(self.rest()),
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        if c == '\n' {
            self.line += 1;
        }
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('#') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.rest().is_empty()
    }

    fn eat(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> crate::Result<()> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{c}'")))
        }
    }

    fn eat_keyword_ci(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let r = self.rest();
        if r.len() >= kw.len() && r[..kw.len()].eq_ignore_ascii_case(kw) {
            let next = r[kw.len()..].chars().next();
            if next.is_none_or(|c| c.is_whitespace() || c == '<' || c == ':') {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn parse_document(&mut self, store: &mut Store) -> crate::Result<()> {
        while !self.at_end() {
            if self.eat_keyword_ci("@prefix") || self.eat_keyword_ci("PREFIX") {
                self.parse_prefix()?;
                continue;
            }
            if self.eat_keyword_ci("@base") || self.eat_keyword_ci("BASE") {
                self.base = self.parse_iri_ref()?;
                let _ = self.eat('.');
                continue;
            }
            self.parse_statement(store)?;
        }
        Ok(())
    }

    fn parse_prefix(&mut self) -> crate::Result<()> {
        self.skip_ws();
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '-' || c == '.')
        {
            self.bump();
        }
        let name = self.input[start..self.pos].to_owned();
        self.expect(':')?;
        let iri = self.parse_iri_ref()?;
        self.prefixes.insert(name, iri);
        let _ = self.eat('.');
        Ok(())
    }

    fn parse_iri_ref(&mut self) -> crate::Result<String> {
        self.skip_ws();
        self.expect('<')?;
        let start = self.pos;
        loop {
            match self.peek() {
                Some('>') => break,
                Some('\n') => return Err(self.err("newline inside IRI")),
                Some(_) => {
                    self.bump();
                }
                None => return Err(self.err("unterminated IRI")),
            }
        }
        let raw = &self.input[start..self.pos];
        self.bump(); // '>'
                     // Relative IRIs resolve against @base (simple concatenation — full
                     // RFC 3986 resolution is out of scope and unused by LOD dumps).
        if raw.contains(':') || self.base.is_empty() {
            Ok(raw.to_owned())
        } else {
            Ok(format!("{}{raw}", self.base))
        }
    }

    fn parse_statement(&mut self, store: &mut Store) -> crate::Result<()> {
        let subject = self.parse_subject(store)?;
        self.parse_predicate_object_list(subject, store)?;
        self.expect('.')
    }

    fn parse_subject(&mut self, store: &mut Store) -> crate::Result<IriId> {
        self.skip_ws();
        match self.peek() {
            Some('<') => {
                let iri = self.parse_iri_ref()?;
                Ok(store.intern_iri(&iri))
            }
            Some('_') => self.parse_blank_label(store),
            Some('[') => self.parse_anon_blank(store),
            Some(_) => {
                let iri = self.parse_prefixed_name()?;
                Ok(store.intern_iri(&iri))
            }
            None => Err(self.err("expected subject")),
        }
    }

    fn parse_blank_label(&mut self, store: &mut Store) -> crate::Result<IriId> {
        self.expect('_')?;
        self.expect(':')?;
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '-')
        {
            self.bump();
        }
        if self.pos == start {
            return Err(self.err("empty blank node label"));
        }
        Ok(store.intern_iri(&format!("_:{}", &self.input[start..self.pos])))
    }

    /// `[ p o ; … ]` — allocates a fresh blank node and asserts its
    /// property list.
    fn parse_anon_blank(&mut self, store: &mut Store) -> crate::Result<IriId> {
        self.expect('[')?;
        self.blank_counter += 1;
        let node = store.intern_iri(&format!("_:anon{}", self.blank_counter));
        self.skip_ws();
        if self.peek() != Some(']') {
            self.parse_predicate_object_list(node, store)?;
        }
        self.expect(']')?;
        Ok(node)
    }

    fn parse_prefixed_name(&mut self) -> crate::Result<String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '-' || c == '.')
        {
            self.bump();
        }
        let prefix = &self.input[start..self.pos];
        if self.peek() != Some(':') {
            self.pos = start;
            return Err(self.err("expected prefixed name"));
        }
        self.bump(); // ':'
        let local_start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '-' || c == '.' || c == '%')
        {
            self.bump();
        }
        // A trailing '.' is the statement terminator, not part of the name.
        let mut local_end = self.pos;
        if self.input[local_start..local_end].ends_with('.') {
            local_end -= 1;
            self.pos = local_end;
        }
        let local = &self.input[local_start..local_end];
        let base = self
            .prefixes
            .get(prefix)
            .ok_or_else(|| self.err(format!("unknown prefix '{prefix}:'")))?;
        Ok(format!("{base}{local}"))
    }

    fn parse_predicate_object_list(
        &mut self,
        subject: IriId,
        store: &mut Store,
    ) -> crate::Result<()> {
        loop {
            let predicate = self.parse_predicate(store)?;
            loop {
                let object = self.parse_object(store)?;
                if store.insert(Triple {
                    subject,
                    predicate,
                    object,
                }) {
                    self.inserted += 1;
                }
                if !self.eat(',') {
                    break;
                }
            }
            if !self.eat(';') {
                return Ok(());
            }
            // Turtle allows a dangling ';' before '.' or ']'.
            self.skip_ws();
            if matches!(self.peek(), Some('.') | Some(']') | None) {
                return Ok(());
            }
        }
    }

    fn parse_predicate(&mut self, store: &mut Store) -> crate::Result<IriId> {
        self.skip_ws();
        if self.rest().starts_with('a')
            && self.rest()[1..]
                .chars()
                .next()
                .is_some_and(|c| c.is_whitespace())
        {
            self.bump();
            return Ok(store.intern_iri(vocab::RDF_TYPE));
        }
        match self.peek() {
            Some('<') => {
                let iri = self.parse_iri_ref()?;
                Ok(store.intern_iri(&iri))
            }
            _ => {
                let iri = self.parse_prefixed_name()?;
                Ok(store.intern_iri(&iri))
            }
        }
    }

    fn parse_object(&mut self, store: &mut Store) -> crate::Result<Term> {
        self.skip_ws();
        match self.peek() {
            Some('<') => {
                let iri = self.parse_iri_ref()?;
                Ok(Term::Iri(store.intern_iri(&iri)))
            }
            Some('_') => Ok(Term::Iri(self.parse_blank_label(store)?)),
            Some('[') => Ok(Term::Iri(self.parse_anon_blank(store)?)),
            Some('(') => Err(self.err("RDF collections '(…)' are not supported")),
            Some('"') => {
                if self.rest().starts_with("\"\"\"") {
                    return Err(self.err("triple-quoted strings are not supported"));
                }
                self.parse_string_literal(store).map(Term::Literal)
            }
            Some(c) if c.is_ascii_digit() || c == '-' || c == '+' => {
                self.parse_numeric_literal().map(Term::Literal)
            }
            _ => {
                if self.eat_keyword_ci("true") {
                    return Ok(Term::Literal(Literal::Boolean(true)));
                }
                if self.eat_keyword_ci("false") {
                    return Ok(Term::Literal(Literal::Boolean(false)));
                }
                let iri = self.parse_prefixed_name()?;
                Ok(Term::Iri(store.intern_iri(&iri)))
            }
        }
    }

    fn parse_string_literal(&mut self, store: &Store) -> crate::Result<Literal> {
        self.expect('"')?;
        let mut value = String::new();
        loop {
            match self.bump() {
                Some('"') => break,
                Some('\\') => {
                    let esc = self.bump().ok_or_else(|| self.err("truncated escape"))?;
                    value.push(match esc {
                        't' => '\t',
                        'n' => '\n',
                        'r' => '\r',
                        'b' => '\u{8}',
                        'f' => '\u{c}',
                        'u' => self.unicode_escape(4)?,
                        'U' => self.unicode_escape(8)?,
                        other => other,
                    });
                }
                Some('\n') => return Err(self.err("newline in single-quoted string")),
                Some(c) => value.push(c),
                None => return Err(self.err("unterminated string literal")),
            }
        }
        if self.peek() == Some('@') {
            self.bump();
            let start = self.pos;
            while self
                .peek()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '-')
            {
                self.bump();
            }
            if self.pos == start {
                return Err(self.err("empty language tag"));
            }
            let lang = self.input[start..self.pos].to_ascii_lowercase();
            return Ok(Literal::LangStr {
                value: store.interner().intern(&value),
                lang: store.interner().intern(&lang),
            });
        }
        if self.rest().starts_with("^^") {
            self.pos += 2;
            let dt = match self.peek() {
                Some('<') => self.parse_iri_ref()?,
                _ => self.parse_prefixed_name()?,
            };
            return typed_literal(&value, &dt, store);
        }
        Ok(Literal::Str(store.interner().intern(&value)))
    }

    fn unicode_escape(&mut self, digits: usize) -> crate::Result<char> {
        let mut code = 0u32;
        for _ in 0..digits {
            let c = self
                .bump()
                .ok_or_else(|| self.err("truncated unicode escape"))?;
            code = code * 16 + c.to_digit(16).ok_or_else(|| self.err("bad hex digit"))?;
        }
        char::from_u32(code).ok_or_else(|| self.err("invalid unicode scalar"))
    }

    fn parse_numeric_literal(&mut self) -> crate::Result<Literal> {
        let start = self.pos;
        if matches!(self.peek(), Some('+') | Some('-')) {
            self.bump();
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                self.bump();
            } else if c == '.' && !is_float {
                // A '.' followed by a digit is a decimal point; otherwise
                // it terminates the statement.
                if self.rest()[1..]
                    .chars()
                    .next()
                    .is_some_and(|d| d.is_ascii_digit())
                {
                    is_float = true;
                    self.bump();
                } else {
                    break;
                }
            } else if (c == 'e' || c == 'E') && self.pos > start {
                is_float = true;
                self.bump();
                if matches!(self.peek(), Some('+') | Some('-')) {
                    self.bump();
                }
            } else {
                break;
            }
        }
        let text = &self.input[start..self.pos];
        if is_float {
            text.parse::<f64>()
                .map(Literal::float)
                .map_err(|_| self.err(format!("invalid numeric literal {text:?}")))
        } else {
            text.parse::<i64>()
                .map(Literal::Integer)
                .map_err(|_| self.err(format!("invalid numeric literal {text:?}")))
        }
    }
}

/// Serializes `store` as compact Turtle: prefix declarations for the most
/// common namespaces, grouped subjects with `;`-separated predicates and
/// `,`-separated objects.
pub fn write_string(store: &Store) -> String {
    use std::collections::HashMap;
    use std::fmt::Write as _;

    // Harvest candidate namespaces (IRI up to the last '/' or '#') from
    // predicates and frequently used IRIs.
    let mut ns_count: HashMap<String, usize> = HashMap::new();
    let mut note = |iri: &str| {
        if let Some(cut) = iri.rfind(['#', '/']) {
            let (ns, local) = iri.split_at(cut + 1);
            if !local.is_empty()
                && local
                    .chars()
                    .all(|c| c.is_alphanumeric() || c == '_' || c == '-')
            {
                *ns_count.entry(ns.to_owned()).or_insert(0) += 1;
            }
        }
    };
    for t in store.iter() {
        note(&store.iri_str(t.subject));
        note(&store.iri_str(t.predicate));
        if let Term::Iri(o) = t.object {
            note(&store.iri_str(o));
        }
    }
    let mut namespaces: Vec<(String, usize)> =
        ns_count.into_iter().filter(|(_, c)| *c >= 3).collect();
    namespaces.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    namespaces.truncate(16);
    let prefix_of: HashMap<String, String> = namespaces
        .iter()
        .enumerate()
        .map(|(i, (ns, _))| (ns.clone(), format!("ns{i}")))
        .collect();

    let render_iri = |iri: &str| -> String {
        if iri.starts_with("_:") {
            return iri.to_owned();
        }
        if let Some(cut) = iri.rfind(['#', '/']) {
            let (ns, local) = iri.split_at(cut + 1);
            if !local.is_empty()
                && local
                    .chars()
                    .all(|c| c.is_alphanumeric() || c == '_' || c == '-')
            {
                if let Some(p) = prefix_of.get(ns) {
                    return format!("{p}:{local}");
                }
            }
        }
        format!("<{iri}>")
    };

    let mut out = String::new();
    for (ns, _) in &namespaces {
        let _ = writeln!(out, "@prefix {}: <{}> .", prefix_of[ns], ns);
    }
    if !namespaces.is_empty() {
        out.push('\n');
    }

    // Group triples by subject, preserving first-appearance order.
    let rdf_type = store.interner().get(vocab::RDF_TYPE).map(IriId);
    for subject in store.subjects() {
        let entity = store.entity(subject);
        if entity.is_empty() {
            continue;
        }
        let _ = write!(out, "{}", render_iri(&store.iri_str(subject)));
        // Group by predicate, preserving order.
        let mut by_pred: Vec<(IriId, Vec<&Term>)> = Vec::new();
        for a in &entity.attributes {
            match by_pred.iter_mut().find(|(p, _)| *p == a.predicate) {
                Some((_, objs)) => objs.push(&a.object),
                None => by_pred.push((a.predicate, vec![&a.object])),
            }
        }
        for (pi, (pred, objects)) in by_pred.iter().enumerate() {
            let sep = if pi == 0 { " " } else { " ;\n    " };
            let pred_str = if rdf_type == Some(*pred) {
                "a".to_owned()
            } else {
                render_iri(&store.iri_str(*pred))
            };
            let _ = write!(out, "{sep}{pred_str} ");
            for (oi, object) in objects.iter().enumerate() {
                if oi > 0 {
                    let _ = write!(out, " , ");
                }
                match object {
                    Term::Iri(o) => {
                        let _ = write!(out, "{}", render_iri(&store.iri_str(*o)));
                    }
                    Term::Literal(l) => {
                        let _ = write!(out, "{}", crate::ntriples::literal_to_string(l, store));
                    }
                }
            }
        }
        out.push_str(" .\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Interner;
    use crate::term::LiteralKind;

    fn parse(input: &str) -> Store {
        let mut store = Store::new(Interner::new_shared());
        read_str(input, &mut store).unwrap_or_else(|e| panic!("parse failed: {e}\n{input}"));
        store
    }

    #[test]
    fn basic_statement() {
        let s = parse("<http://a> <http://p> <http://b> .");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn prefixes_and_a_keyword() {
        let s = parse(
            "@prefix ex: <http://example.org/> .\n\
             PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
             ex:alice a foaf:Person .",
        );
        let t = s.iter().next().unwrap();
        assert_eq!(&*s.iri_str(t.subject), "http://example.org/alice");
        assert_eq!(&*s.iri_str(t.predicate), vocab::RDF_TYPE);
        assert_eq!(
            &*s.iri_str(t.object.as_iri().unwrap()),
            "http://xmlns.com/foaf/0.1/Person"
        );
    }

    #[test]
    fn predicate_and_object_lists() {
        let s = parse(
            "@prefix ex: <http://ex/> .\n\
             ex:a ex:p ex:b , ex:c ;\n\
                  ex:q \"v\" ;\n\
                  ex:r 1 , 2 , 3 .",
        );
        assert_eq!(s.len(), 6);
        let a = s.intern_iri("http://ex/a");
        let r = s.intern_iri("http://ex/r");
        assert_eq!(s.objects(a, r).count(), 3);
    }

    #[test]
    fn dangling_semicolon() {
        let s = parse("@prefix ex: <http://ex/> . ex:a ex:p ex:b ; .");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn literals_all_shapes() {
        let s = parse(
            "@prefix ex: <http://ex/> .\n\
             @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n\
             ex:a ex:str \"hello\" ;\n\
                  ex:lang \"bonjour\"@FR ;\n\
                  ex:int 42 ;\n\
                  ex:neg -7 ;\n\
                  ex:dec 2.5 ;\n\
                  ex:exp 1e3 ;\n\
                  ex:bool true ;\n\
                  ex:typed \"1984-12-30\"^^xsd:date ;\n\
                  ex:typed2 \"99\"^^<http://www.w3.org/2001/XMLSchema#integer> .",
        );
        let a = s.intern_iri("http://ex/a");
        let kinds: Vec<LiteralKind> = s
            .match_pattern(Some(a), None, None)
            .filter_map(|t| t.object.as_literal().map(Literal::kind))
            .collect();
        assert_eq!(
            kinds,
            vec![
                LiteralKind::Str,
                LiteralKind::LangStr,
                LiteralKind::Integer,
                LiteralKind::Integer,
                LiteralKind::Float,
                LiteralKind::Float,
                LiteralKind::Boolean,
                LiteralKind::Date,
                LiteralKind::Integer,
            ]
        );
    }

    #[test]
    fn blank_nodes_labeled_and_anonymous() {
        let s = parse(
            "@prefix ex: <http://ex/> .\n\
             _:b1 ex:p ex:a .\n\
             ex:a ex:knows [ ex:name \"Anon\" ; ex:age 3 ] .",
        );
        assert_eq!(s.len(), 4);
        // The anonymous node carries its property list.
        let name = s.intern_iri("http://ex/name");
        let anon: Vec<_> = s.match_pattern(None, Some(name), None).collect();
        assert_eq!(anon.len(), 1);
        assert!(s.iri_str(anon[0].subject).starts_with("_:anon"));
    }

    #[test]
    fn base_resolution() {
        let s = parse("@base <http://ex/res/> . <alice> <http://p> <bob> .");
        let t = s.iter().next().unwrap();
        assert_eq!(&*s.iri_str(t.subject), "http://ex/res/alice");
        assert_eq!(&*s.iri_str(t.object.as_iri().unwrap()), "http://ex/res/bob");
    }

    #[test]
    fn comments_and_whitespace() {
        let s = parse(
            "# header comment\n\
             @prefix ex: <http://ex/> . # trailing\n\
             ex:a # mid-statement comment\n\
               ex:p ex:b .",
        );
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn prefixed_name_before_terminating_dot() {
        let s = parse("@prefix ex: <http://ex/> . ex:a ex:p ex:b.");
        let t = s.iter().next().unwrap();
        assert_eq!(&*s.iri_str(t.object.as_iri().unwrap()), "http://ex/b");
    }

    #[test]
    fn errors_are_reported_with_lines() {
        let cases = [
            "@prefix ex: <http://ex/> .\nex:a unknown:p ex:b .",
            "<http://a> <http://p> ( 1 2 ) .",
            "<http://a> <http://p> \"\"\"long\"\"\" .",
            "<http://a> <http://p> \"unterminated .",
            "<http://a> <http://p> .",
            "<http://a> <http://p> <http://b>",
        ];
        for c in cases {
            let mut store = Store::new(Interner::new_shared());
            let err = read_str(c, &mut store);
            assert!(err.is_err(), "should reject: {c}");
        }
        let mut store = Store::new(Interner::new_shared());
        let err = read_str(
            "<http://a> <http://p> <http://b> .\n<http://a> oops",
            &mut store,
        )
        .unwrap_err();
        match err {
            RdfError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_carry_column_and_token() {
        let mut store = Store::new(Interner::new_shared());
        let err = read_str(
            "<http://a> <http://p> <http://b> .\n<http://a> <http://q> ( 1 2 ) .",
            &mut store,
        )
        .unwrap_err();
        match &err {
            RdfError::Parse {
                line,
                column,
                token,
                ..
            } => {
                assert_eq!(*line, 2);
                assert_eq!(*column, 23, "column points at the '('");
                assert_eq!(token, "(");
            }
            other => panic!("unexpected {other:?}"),
        }
        let rendered = err.to_string();
        assert!(rendered.contains("line 2"), "{rendered}");
        assert!(rendered.contains("column"), "{rendered}");
    }

    #[test]
    fn error_positions_are_correct_on_crlf_input() {
        let mut store = Store::new(Interner::new_shared());
        // Same document as errors_carry_column_and_token, but CRLF-ended:
        // the '\r' before the line break must not shift line or column.
        let err = read_str(
            "<http://a> <http://p> <http://b> .\r\n<http://a> <http://q> ( 1 2 ) .\r\n",
            &mut store,
        )
        .unwrap_err();
        match &err {
            RdfError::Parse {
                line,
                column,
                token,
                ..
            } => {
                assert_eq!(*line, 2);
                assert_eq!(*column, 23, "same column as the LF-only case");
                assert_eq!(token, "(");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_columns_count_chars_not_bytes() {
        let mut store = Store::new(Interner::new_shared());
        // 24 chars but 27 bytes precede the '(' ('é' is 2 bytes, '火' 3):
        // a byte-offset column would report 28.
        let err = read_str("<http://é/火> <http://p> ( 1 ) .", &mut store).unwrap_err();
        match &err {
            RdfError::Parse { column, token, .. } => {
                assert_eq!(*column, 25, "column counts characters, not bytes");
                assert_eq!(token, "(");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn writer_round_trips() {
        let src = parse(
            "@prefix ex: <http://ex/> .\n\
             @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n\
             ex:a a ex:Person ; ex:name \"Alice \\\"A\\\"\" , \"Ali\"@en ; ex:age 30 .\n\
             ex:b ex:knows ex:a ; ex:score 2.5 ; ex:ok true ; ex:born \"1984-12-30\"^^xsd:date .",
        );
        let text = write_string(&src);
        let back = parse(&text);
        assert_eq!(back.len(), src.len(), "turtle output:\n{text}");
        for t in src.iter() {
            // Note: ids are interner-shared, so triples compare directly.
            assert!(back.contains(t), "missing {t:?} in:\n{text}");
        }
        // Output is actually compact: prefixes used, subject grouped.
        assert!(text.contains("@prefix"));
        assert!(text.contains(" ;\n"));
        assert!(text.contains(" , "));
    }

    #[test]
    fn writer_handles_blank_nodes_and_bare_iris() {
        let mut store = Store::new(Interner::new_shared());
        let b = store.intern_iri("_:b1");
        let p = store.intern_iri("p-without-namespace");
        store.insert_iri(b, p, b);
        let text = write_string(&store);
        let back = parse(&text);
        assert_eq!(back.len(), 1, "output:\n{text}");
    }

    #[test]
    fn ntriples_output_is_valid_turtle() {
        // N-Triples is a Turtle subset: our serializer's output must parse.
        let mut original = Store::new(Interner::new_shared());
        let a = original.intern_iri("http://ex/a");
        let p = original.intern_iri("http://ex/p");
        original.insert_literal(a, p, Literal::str(original.interner(), "x \"quoted\""));
        original.insert_literal(a, p, Literal::Integer(5));
        let text = crate::ntriples::write_string(&original);
        let reparsed = parse(&text);
        assert_eq!(reparsed.len(), original.len());
    }
}
