//! # alex-rdf — RDF substrate for ALEX
//!
//! An in-memory RDF toolkit purpose-built for the ALEX reproduction:
//!
//! * [`Interner`] — a concurrent string interner mapping IRIs and string
//!   literal values to compact `u32` ids shared across datasets, so that
//!   predicates from *different* knowledge bases can be compared by id.
//! * [`Term`], [`Literal`], [`Triple`] — a typed RDF value model. Literals
//!   carry their parsed value (integer, float, date, boolean, string,
//!   language-tagged string) so similarity functions can dispatch on type,
//!   as Section 4.1 of the paper requires.
//! * [`Store`] — an indexed triple store with subject / predicate / object
//!   and (subject, predicate) access paths, plus an [`Entity`] view (subject
//!   together with its attribute list) which is the unit ALEX's feature sets
//!   are built from.
//! * [`ntriples`] — a streaming N-Triples 1.1 parser and serializer, and
//!   [`turtle`] — a Turtle 1.1 subset parser (prefixes, predicate/object
//!   lists, blank-node property lists, numeric/boolean shorthands).
//! * [`vocab`] — well-known vocabulary IRIs (`rdf:type`, `rdfs:label`,
//!   `owl:sameAs`, XSD datatypes).
//!
//! The model intentionally omits named graphs and blank-node scoping rules:
//! ALEX operates on pairs of flat entity-attribute datasets. Blank nodes are
//! accepted by the parser and interned under their `_:label` spelling.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod date;
mod entity;
mod error;
pub mod hash;
mod interner;
mod link;
pub mod ntriples;
mod store;
mod term;
pub mod turtle;
pub mod vocab;

pub use date::Date;
pub use entity::{Attribute, Entity};
pub use error::RdfError;
pub use interner::{Interner, StrId};
pub use link::{Link, ScoredLink};
pub use store::{Store, StoreStats, TripleIter};
pub use term::{FloatBits, IriId, Literal, LiteralKind, Term, Triple};

/// Convenient result alias for fallible RDF operations.
pub type Result<T> = std::result::Result<T, RdfError>;

/// Returns the RNG seed tests should use, honoring `ALEX_TEST_SEED`.
///
/// With `ALEX_TEST_SEED` unset this returns `default` unchanged, so
/// every test keeps its own fixed seed. When the variable is set
/// (decimal or `0x`-prefixed hex), the env seed is XOR-mixed with
/// `default`: the whole suite shifts to a new deterministic point in
/// seed space while distinct call sites stay decorrelated and
/// same-seed call sites stay equal. Panics on an unparsable value
/// rather than silently falling back.
pub fn test_seed(default: u64) -> u64 {
    match std::env::var("ALEX_TEST_SEED") {
        Ok(text) => {
            let text = text.trim();
            let parsed = if let Some(hex) = text.strip_prefix("0x") {
                u64::from_str_radix(hex, 16).ok()
            } else {
                text.parse().ok()
            };
            match parsed {
                Some(seed) => seed ^ default,
                None => panic!("ALEX_TEST_SEED {text:?} is not a u64 (decimal or 0x hex)"),
            }
        }
        Err(_) => default,
    }
}

#[cfg(test)]
mod seed_tests {
    use super::test_seed;

    #[test]
    fn default_passes_through_when_env_unset() {
        // The test runner does not set ALEX_TEST_SEED by default; if a
        // developer sets it, the XOR property below still holds.
        match std::env::var("ALEX_TEST_SEED") {
            Err(_) => assert_eq!(test_seed(42), 42),
            Ok(_) => assert_eq!(test_seed(42) ^ test_seed(0), 42),
        }
    }

    #[test]
    fn equal_defaults_stay_equal_and_distinct_stay_distinct() {
        assert_eq!(test_seed(5), test_seed(5));
        assert_ne!(test_seed(1), test_seed(2));
    }
}
