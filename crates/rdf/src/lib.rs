//! # alex-rdf — RDF substrate for ALEX
//!
//! An in-memory RDF toolkit purpose-built for the ALEX reproduction:
//!
//! * [`Interner`] — a concurrent string interner mapping IRIs and string
//!   literal values to compact `u32` ids shared across datasets, so that
//!   predicates from *different* knowledge bases can be compared by id.
//! * [`Term`], [`Literal`], [`Triple`] — a typed RDF value model. Literals
//!   carry their parsed value (integer, float, date, boolean, string,
//!   language-tagged string) so similarity functions can dispatch on type,
//!   as Section 4.1 of the paper requires.
//! * [`Store`] — an indexed triple store with subject / predicate / object
//!   and (subject, predicate) access paths, plus an [`Entity`] view (subject
//!   together with its attribute list) which is the unit ALEX's feature sets
//!   are built from.
//! * [`ntriples`] — a streaming N-Triples 1.1 parser and serializer, and
//!   [`turtle`] — a Turtle 1.1 subset parser (prefixes, predicate/object
//!   lists, blank-node property lists, numeric/boolean shorthands).
//! * [`vocab`] — well-known vocabulary IRIs (`rdf:type`, `rdfs:label`,
//!   `owl:sameAs`, XSD datatypes).
//!
//! The model intentionally omits named graphs and blank-node scoping rules:
//! ALEX operates on pairs of flat entity-attribute datasets. Blank nodes are
//! accepted by the parser and interned under their `_:label` spelling.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod date;
mod entity;
mod error;
mod interner;
mod link;
pub mod ntriples;
mod store;
mod term;
pub mod turtle;
pub mod vocab;

pub use date::Date;
pub use entity::{Attribute, Entity};
pub use error::RdfError;
pub use interner::{Interner, StrId};
pub use link::{Link, ScoredLink};
pub use store::{Store, StoreStats, TripleIter};
pub use term::{FloatBits, IriId, Literal, LiteralKind, Term, Triple};

/// Convenient result alias for fallible RDF operations.
pub type Result<T> = std::result::Result<T, RdfError>;
