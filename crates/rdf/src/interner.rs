//! A concurrent string interner.
//!
//! ALEX compares predicates and entity identifiers *across* datasets, so a
//! single interner is shared (via `Arc`) by every [`crate::Store`] in a
//! linking task. Interned ids are dense `u32`s, which makes them cheap hash
//! keys and lets downstream crates use them as indices into side tables.

use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::hash::FastMap;

/// Identifier of an interned string (IRI text or string-literal value).
///
/// Ids are dense: the first interned string receives id 0, the next id 1,
/// and so on. [`Interner::len`] therefore bounds every id it ever issued.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StrId(pub u32);

impl StrId {
    /// The raw index value, usable directly as a `Vec` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for StrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StrId({})", self.0)
    }
}

#[derive(Default)]
struct Inner {
    map: FastMap<Arc<str>, StrId>,
    strings: Vec<Arc<str>>,
}

impl Inner {
    fn intern(&mut self, s: &str) -> StrId {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let id = StrId(
            u32::try_from(self.strings.len())
                .expect("interner overflow: more than u32::MAX strings"),
        );
        let arc: Arc<str> = Arc::from(s);
        self.strings.push(Arc::clone(&arc));
        self.map.insert(arc, id);
        id
    }
}

/// A thread-safe append-only string interner.
///
/// Reads (resolving an id back to its string) take a shared lock; interning
/// takes the shared lock first and upgrades to exclusive only on a miss, so
/// steady-state lookups of already-interned strings never contend.
///
/// # Examples
///
/// ```
/// use alex_rdf::Interner;
///
/// let interner = Interner::new();
/// let a = interner.intern("http://example.org/a");
/// let b = interner.intern("http://example.org/b");
/// assert_ne!(a, b);
/// assert_eq!(interner.intern("http://example.org/a"), a);
/// assert_eq!(&*interner.resolve(a), "http://example.org/a");
/// ```
#[derive(Default)]
pub struct Interner {
    inner: RwLock<Inner>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty interner already wrapped in an [`Arc`], the shape
    /// every consumer in this workspace wants.
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Interns `s`, returning its id. Re-interning an identical string
    /// returns the original id.
    pub fn intern(&self, s: &str) -> StrId {
        if let Some(&id) = self.inner.read().map.get(s) {
            return id;
        }
        // The write path re-checks under the exclusive lock in case another
        // writer interned `s` between our read and write acquisitions.
        self.inner.write().intern(s)
    }

    /// Interns a batch of strings under one lock acquisition, returning
    /// their ids in input order. Equivalent to calling [`Interner::intern`]
    /// per string but skips the per-call read-then-write lock dance, which
    /// matters when loading a snapshot dictionary of thousands of strings.
    pub fn intern_all<'a>(&self, strings: impl IntoIterator<Item = &'a str>) -> Vec<StrId> {
        let iter = strings.into_iter();
        let mut inner = self.inner.write();
        let (low, _) = iter.size_hint();
        inner.map.reserve(low);
        inner.strings.reserve(low);
        iter.map(|s| inner.intern(s)).collect()
    }

    /// Returns the id of `s` if it was interned before, without interning.
    pub fn get(&self, s: &str) -> Option<StrId> {
        self.inner.read().map.get(s).copied()
    }

    /// Resolves an id back to its string.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this interner. Ids are only ever
    /// produced by [`Interner::intern`], so this indicates interner mixing,
    /// which is a programming error.
    pub fn resolve(&self, id: StrId) -> Arc<str> {
        self.inner
            .read()
            .strings
            .get(id.index())
            .cloned()
            .unwrap_or_else(|| panic!("StrId({}) does not belong to this interner", id.0))
    }

    /// Resolves an id, returning `None` instead of panicking when the id is
    /// foreign.
    pub fn try_resolve(&self, id: StrId) -> Option<Arc<str>> {
        self.inner.read().strings.get(id.index()).cloned()
    }

    /// Number of distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.inner.read().strings.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interner")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let i = Interner::new();
        let a = i.intern("x");
        assert_eq!(i.intern("x"), a);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn ids_are_dense() {
        let i = Interner::new();
        for n in 0..100u32 {
            let id = i.intern(&format!("s{n}"));
            assert_eq!(id.0, n);
        }
        assert_eq!(i.len(), 100);
    }

    #[test]
    fn intern_all_matches_one_at_a_time() {
        let batch = Interner::new();
        let single = Interner::new();
        let inputs = ["a", "b", "a", "", "c", "b"];
        let ids = batch.intern_all(inputs.iter().copied());
        let expected: Vec<StrId> = inputs.iter().map(|s| single.intern(s)).collect();
        assert_eq!(ids, expected);
        assert_eq!(batch.len(), single.len());
        // The batch is visible to later singular interns.
        assert_eq!(batch.intern("a"), ids[0]);
    }

    #[test]
    fn get_does_not_intern() {
        let i = Interner::new();
        assert_eq!(i.get("missing"), None);
        assert!(i.is_empty());
        let id = i.intern("present");
        assert_eq!(i.get("present"), Some(id));
    }

    #[test]
    fn resolve_round_trips() {
        let i = Interner::new();
        let id = i.intern("http://example.org/thing");
        assert_eq!(&*i.resolve(id), "http://example.org/thing");
        assert_eq!(i.try_resolve(StrId(999)), None);
    }

    #[test]
    #[should_panic(expected = "does not belong")]
    fn resolve_foreign_id_panics() {
        let i = Interner::new();
        let _ = i.resolve(StrId(0));
    }

    #[test]
    fn concurrent_interning_converges() {
        let i = Interner::new_shared();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let i = Arc::clone(&i);
            handles.push(std::thread::spawn(move || {
                (0..500)
                    .map(|n| i.intern(&format!("k{}", n % 50)).0)
                    .max()
                    .unwrap()
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Every thread interned the same 50 distinct strings.
        assert_eq!(i.len(), 50);
    }
}
