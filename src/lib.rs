//! # alex — Automatic Link Exploration in Linked Data
//!
//! A complete Rust reproduction of *El-Roby & Aboulnaga, "ALEX: Automatic
//! Link Exploration in Linked Data", SIGMOD 2015*, including every
//! substrate the system depends on:
//!
//! | module | crate | role |
//! |--------|-------|------|
//! | [`rdf`] | `alex-rdf` | interned RDF model, indexed triple store, N-Triples I/O |
//! | [`sim`] | `alex-sim` | typed value-similarity functions |
//! | [`paris`] | `alex-paris` | the PARIS automatic linker (initial candidate links) |
//! | [`query`] | `alex-query` | SPARQL-subset + federated engine with link provenance |
//! | [`datagen`] | `alex-datagen` | synthetic dataset pairs mirroring the paper's Table 1 |
//! | [`serve`] | `alex-serve` | HTTP curation server: sessions, federated queries, answer feedback |
//! | (root) | `alex-core` | the reinforcement-learning link explorer itself |
//!
//! ## The pipeline in one page
//!
//! ```
//! use alex::datagen::{self, PaperPair};
//! use alex::paris::ParisLinker;
//! use alex::{AlexConfig, AlexDriver, ExactOracle};
//!
//! // 1. Two RDF datasets describing an overlapping world.
//! let pair = datagen::generate(&PaperPair::OpencycNbaNytimes.spec(0.5, 7));
//!
//! // 2. An automatic linker proposes initial candidate links.
//! let initial = ParisLinker::default().run(&pair.left, &pair.right).above_threshold(0.5);
//!
//! // 3. ALEX explores around links the (simulated) user approves.
//! let cfg = AlexConfig { episode_size: 20, partitions: 2, ..Default::default() };
//! let mut driver = AlexDriver::new(&pair.left, &pair.right, &initial, cfg).unwrap();
//! let outcome = driver.run(&ExactOracle::new(pair.truth.clone()), &pair.truth);
//!
//! // 4. Link quality improved over the automatic baseline.
//! let start = outcome.reports[0].quality;
//! let end = outcome.final_quality();
//! assert!(end.f1 >= start.f1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use alex_datagen as datagen;
pub use alex_paris as paris;
pub use alex_query as query;
pub use alex_rdf as rdf;
pub use alex_serve as serve;
pub use alex_sim as sim;

pub use alex_core::{
    round_robin, AlexConfig, AlexDriver, CandidateSet, EpisodeReport, ExactOracle,
    ExplorationSpace, Feature, FeatureKey, FeatureSet, FeedbackOracle, NoisyOracle,
    PartitionEngine, PartitionEpisodeStats, Policy, QTable, Quality, ReluctantOracle, RunOutcome,
    SessionError, SessionSnapshot, StateAction, DEFAULT_MAX_BLOCK, SNAPSHOT_VERSION,
};
