//! Cross-crate integration: datagen → PARIS → ALEX, the complete pipeline.

use alex::datagen::{self, degrade, measure, PaperPair};
use alex::paris::{ParisConfig, ParisLinker};
use alex::{AlexConfig, AlexDriver, ExactOracle};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_cfg(episode_size: usize) -> AlexConfig {
    AlexConfig {
        episode_size,
        partitions: 4,
        max_episodes: 60,
        ..Default::default()
    }
}

#[test]
fn paris_then_alex_improves_over_baseline() {
    let pair = datagen::generate(&PaperPair::OpencycNbaNytimes.spec(1.0, 3));
    let paris = ParisLinker::new(ParisConfig::default()).run(&pair.left, &pair.right);
    let initial = paris.above_threshold(0.5);
    let (p0, r0) = measure(&initial, &pair.truth);
    assert!(p0 > 0.5, "PARIS precision should be reasonable, got {p0}");

    let mut driver = AlexDriver::new(&pair.left, &pair.right, &initial, small_cfg(10)).unwrap();
    let oracle = ExactOracle::new(pair.truth.clone());
    let out = driver.run(&oracle, &pair.truth);

    let q0 = out.reports[0].quality;
    let qn = out.final_quality();
    assert!(
        qn.f1 >= q0.f1,
        "ALEX must not degrade PARIS output: {q0:?} -> {qn:?}"
    );
    assert!(
        qn.recall >= r0,
        "recall must not drop: {r0} -> {}",
        qn.recall
    );
}

#[test]
fn low_recall_start_recovers_most_links() {
    // The Figure 2(a) regime at small scale.
    let pair = datagen::generate(&PaperPair::DbpediaNytimes.spec(0.3, 5));
    let mut rng = StdRng::seed_from_u64(alex_rdf::test_seed(9));
    let initial = degrade(&pair.truth, 0.85, 0.2, &mut rng);
    let mut driver = AlexDriver::new(&pair.left, &pair.right, &initial, small_cfg(50)).unwrap();
    let oracle = ExactOracle::new(pair.truth.clone());
    let out = driver.run(&oracle, &pair.truth);

    assert!(out.reports[0].quality.recall < 0.25);
    let qn = out.final_quality();
    assert!(
        qn.recall > 0.7,
        "recall should recover substantially, got {qn:?}"
    );
    assert!(qn.precision > 0.8, "precision should hold, got {qn:?}");
    // Recall must jump sharply in the very first episode, as in Fig 2(a).
    assert!(
        out.reports[1].quality.recall > 0.5,
        "first-episode recall jump missing: {:?}",
        out.reports[1].quality
    );
}

#[test]
fn low_precision_start_gets_cleaned() {
    // The Figure 2(b) regime: good recall, terrible precision.
    let pair = datagen::generate(&PaperPair::DbpediaDrugbank.spec(0.5, 5));
    let mut rng = StdRng::seed_from_u64(alex_rdf::test_seed(9));
    let initial = degrade(&pair.truth, 0.3, 0.95, &mut rng);
    let mut driver = AlexDriver::new(&pair.left, &pair.right, &initial, small_cfg(40)).unwrap();
    let oracle = ExactOracle::new(pair.truth.clone());
    let out = driver.run(&oracle, &pair.truth);

    assert!(out.reports[0].quality.precision < 0.4);
    let qn = out.final_quality();
    assert!(
        qn.precision > 0.8,
        "wrong links should be removed, got {qn:?}"
    );
    assert!(qn.recall > 0.9, "recall should be preserved, got {qn:?}");
}

#[test]
fn discovered_links_are_real_pairs() {
    // Every link ALEX reports must reference entities that actually exist
    // in the respective datasets.
    let pair = datagen::generate(&PaperPair::OpencycSwdf.spec(1.0, 11));
    let mut rng = StdRng::seed_from_u64(alex_rdf::test_seed(2));
    let initial = degrade(&pair.truth, 0.9, 0.5, &mut rng);
    let mut driver = AlexDriver::new(&pair.left, &pair.right, &initial, small_cfg(10)).unwrap();
    let oracle = ExactOracle::new(pair.truth.clone());
    let out = driver.run(&oracle, &pair.truth);

    let left_entities: std::collections::HashSet<_> = pair.left.subjects().collect();
    let right_entities: std::collections::HashSet<_> = pair.right.subjects().collect();
    for link in &out.final_links {
        assert!(
            left_entities.contains(&link.left),
            "unknown left entity in {link:?}"
        );
        assert!(
            right_entities.contains(&link.right),
            "unknown right entity in {link:?}"
        );
    }
}

#[test]
fn run_is_deterministic_for_single_partition() {
    let pair = datagen::generate(&PaperPair::OpencycLexvo.spec(1.0, 13));
    let mut rng = StdRng::seed_from_u64(alex_rdf::test_seed(4));
    let initial = degrade(&pair.truth, 0.5, 0.4, &mut rng);
    let cfg = AlexConfig {
        episode_size: 25,
        partitions: 1,
        max_episodes: 20,
        ..Default::default()
    };
    let run = || {
        let mut d = AlexDriver::new(&pair.left, &pair.right, &initial, cfg.clone()).unwrap();
        let oracle = ExactOracle::new(pair.truth.clone());
        let out = d.run(&oracle, &pair.truth);
        let mut links: Vec<_> = out.final_links.into_iter().collect();
        links.sort();
        (out.reports.len(), links)
    };
    assert_eq!(run(), run());
}

#[test]
fn ntriples_round_trip_preserves_alex_outcome() {
    // Serialize a generated pair, reload it, and verify ALEX reaches the
    // same final quality — the storage layer must be faithful.
    use alex::rdf::{ntriples, Interner, Link, Store};

    let pair = datagen::generate(&PaperPair::OpencycNbaNytimes.spec(1.0, 21));
    let left_text = ntriples::write_string(&pair.left);
    let right_text = ntriples::write_string(&pair.right);

    let interner = Interner::new_shared();
    let mut left2 = Store::new(interner.clone());
    let mut right2 = Store::new(interner.clone());
    ntriples::read_str(&left_text, &mut left2).unwrap();
    ntriples::read_str(&right_text, &mut right2).unwrap();
    assert_eq!(left2.len(), pair.left.len());
    assert_eq!(right2.len(), pair.right.len());

    // Remap the ground truth into the new interner via IRI strings.
    let truth2: std::collections::HashSet<Link> = pair
        .truth
        .iter()
        .map(|l| {
            Link::new(
                left2.intern_iri(&pair.left.iri_str(l.left)),
                right2.intern_iri(&pair.right.iri_str(l.right)),
            )
        })
        .collect();

    let cfg = AlexConfig {
        episode_size: 10,
        partitions: 1,
        max_episodes: 30,
        ..Default::default()
    };
    let run = |left: &Store, right: &Store, truth: &std::collections::HashSet<Link>| {
        let initial: Vec<Link> = {
            let mut v: Vec<Link> = truth.iter().copied().collect();
            v.sort();
            v.truncate(truth.len() / 2);
            v
        };
        let mut d = AlexDriver::new(left, right, &initial, cfg.clone()).unwrap();
        let oracle = ExactOracle::new(truth.clone());
        let out = d.run(&oracle, truth);
        out.final_quality()
    };
    let q1 = run(&pair.left, &pair.right, &pair.truth);
    let q2 = run(&left2, &right2, &truth2);
    // Interner ids differ, so RNG-dependent trajectories may differ, but
    // both runs must land in the same quality regime.
    assert!((q1.f1 - q2.f1).abs() < 0.15, "{q1:?} vs {q2:?}");
}
