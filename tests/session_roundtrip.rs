//! Integration test: a SessionSnapshot survives the full persistence
//! cycle — capture → JSON → fresh process (fresh stores and interner,
//! datasets reloaded from their N-Triples serialization) → restore —
//! with identical candidates, blacklist, and config.

use std::collections::HashSet;

use alex_core::{AlexConfig, AlexDriver, ExactOracle, SessionSnapshot};
use alex_rdf::{ntriples, Interner, Link, Literal, Store};

fn world() -> (Store, Store, HashSet<Link>) {
    let interner = Interner::new_shared();
    let mut left = Store::new(interner.clone());
    let mut right = Store::new(interner.clone());
    let name_l = left.intern_iri("http://l/name");
    let name_r = right.intern_iri("http://r/label");
    let mut truth = HashSet::new();
    for i in 0..12 {
        let l = left.intern_iri(&format!("http://l/e{i}"));
        let r = right.intern_iri(&format!("http://r/e{i}"));
        let nm = format!("entity number {i}");
        left.insert_literal(l, name_l, Literal::str(&interner, &nm));
        right.insert_literal(r, name_r, Literal::str(&interner, &nm));
        truth.insert(Link::new(l, r));
    }
    (left, right, truth)
}

fn cfg() -> AlexConfig {
    AlexConfig {
        episode_size: 20,
        partitions: 2,
        max_episodes: 4,
        seed: alex_rdf::test_seed(17),
        ..Default::default()
    }
}

/// Renders both stores to N-Triples text and parses them back into a
/// completely fresh interner, as a restart would.
fn reload(left: &Store, right: &Store) -> (Store, Store) {
    let fresh = Interner::new_shared();
    let mut left2 = Store::new(fresh.clone());
    let mut right2 = Store::new(fresh.clone());
    ntriples::read_str(&ntriples::write_string(left), &mut left2).unwrap();
    ntriples::read_str(&ntriples::write_string(right), &mut right2).unwrap();
    (left2, right2)
}

#[test]
fn snapshot_restores_identically_against_reloaded_stores() {
    let (left, right, truth) = world();
    let initial: Vec<Link> = truth.iter().take(4).copied().collect();
    let mut driver = AlexDriver::new(&left, &right, &initial, cfg()).unwrap();
    let oracle = ExactOracle::new(truth.clone());
    driver.run(&oracle, &truth);

    let mut snap = SessionSnapshot::capture(&driver, &left, &right);
    // A non-empty blacklist so all three sections are exercised.
    snap.blacklist
        .push(("http://l/e0".into(), "http://r/e5".into()));
    snap.blacklist.sort();
    let json = snap.to_json();

    // "New process": parse the JSON and reload the datasets from text.
    let back = SessionSnapshot::from_json(&json).unwrap();
    assert_eq!(
        back, snap,
        "snapshot must round-trip through JSON unchanged"
    );

    let (left2, right2) = reload(&left, &right);
    let restored = back.restore(&left2, &right2).unwrap();

    // Interned ids differ across interners, so compare by IRI string.
    let mut restored_candidates: Vec<(String, String)> = restored
        .candidate_links()
        .into_iter()
        .map(|l| {
            (
                left2.iri_str(l.left).to_string(),
                right2.iri_str(l.right).to_string(),
            )
        })
        .collect();
    restored_candidates.sort();
    assert_eq!(restored_candidates, snap.candidates);
    assert_eq!(restored.config(), &snap.config);

    // Re-capturing the restored driver reproduces the snapshot exactly.
    let recaptured = SessionSnapshot::capture(&restored, &left2, &right2);
    assert_eq!(recaptured.candidates, snap.candidates);
    assert_eq!(recaptured.blacklist, snap.blacklist);
    assert_eq!(recaptured.config, snap.config);
}

#[test]
fn config_fields_survive_json_round_trip() {
    let (left, right, truth) = world();
    let initial: Vec<Link> = truth.iter().take(2).copied().collect();
    let mut config = cfg();
    config.theta = 0.42;
    config.epsilon = 0.25;
    config.blacklist_threshold = 3;
    let driver = AlexDriver::new(&left, &right, &initial, config.clone()).unwrap();

    let snap = SessionSnapshot::capture(&driver, &left, &right);
    let back = SessionSnapshot::from_json(&snap.to_json()).unwrap();
    assert_eq!(back.config.theta, 0.42);
    assert_eq!(back.config.epsilon, 0.25);
    assert_eq!(back.config.blacklist_threshold, 3);
    assert_eq!(back.config, config);
}
