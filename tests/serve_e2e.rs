//! End-to-end tests for `alex-serve` over real TCP sockets: the Figure-1
//! loop (query → answer feedback → link change) through the HTTP API,
//! saturation backpressure (503), request timeouts (408), and graceful
//! shutdown persisting restorable session snapshots.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use alex::serve::{ServeConfig, Server};
use alex_core::SessionSnapshot;
use alex_rdf::{ntriples, Interner, Store};
use serde_json::Value;

/// Sends one HTTP/1.1 request on a fresh connection and returns
/// `(status, parsed JSON body)`. Plain-text bodies come back as
/// `Value::String`.
fn http(addr: &str, method: &str, path: &str, body: Option<&Value>) -> (u16, Value) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let body_text = body.map(|v| v.to_json_string(false)).unwrap_or_default();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body_text}",
        body_text.len()
    )
    .expect("send request");
    read_response(&mut stream)
}

/// Reads a full `Connection: close` response from `stream`.
fn read_response(stream: &mut TcpStream) -> (u16, Value) {
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("utf-8 response");
    let status: u16 = text
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {text:?}"));
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
    let value =
        serde_json::parse_value_str(body).unwrap_or_else(|_| Value::String(body.to_string()));
    (status, value)
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn s(text: &str) -> Value {
    Value::String(text.into())
}

fn pair(l: &str, r: &str) -> Value {
    Value::Array(vec![s(l), s(r)])
}

/// The paper's motivating example as inline N-Triples: four NBA players
/// in a DBpedia-like source, their namesakes plus one article each in a
/// NYTimes-like source, and the 2013 MVP award on player 0.
fn figure1_world() -> (String, String) {
    let players = ["LeBron James", "Kobe Bryant", "Tim Duncan", "Kevin Durant"];
    let mut left = String::new();
    let mut right = String::new();
    for (i, name) in players.iter().enumerate() {
        left.push_str(&format!(
            "<http://db/player{i}> <http://db/name> \"{name}\" .\n"
        ));
        right.push_str(&format!(
            "<http://ny/person{i}> <http://ny/fullName> \"{name}\" .\n"
        ));
        right.push_str(&format!(
            "<http://ny/article{i}> <http://ny/about> <http://ny/person{i}> .\n"
        ));
    }
    left.push_str("<http://db/player0> <http://db/award> <http://db/NBA_MVP_2013> .\n");
    (left, right)
}

fn start(cfg: ServeConfig) -> (Server, String) {
    let server = Server::start(cfg).expect("server starts");
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn local(overrides: impl FnOnce(&mut ServeConfig)) -> ServeConfig {
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..ServeConfig::default()
    };
    overrides(&mut cfg);
    cfg
}

/// Creates the Figure-1 session (one correct link, one wrong link) and
/// returns its id.
fn create_session(addr: &str) -> String {
    let (left, right) = figure1_world();
    let body = obj(vec![
        ("left_data", s(&left)),
        ("right_data", s(&right)),
        (
            "links",
            Value::Array(vec![
                pair("http://db/player0", "http://ny/person0"), // correct
                pair("http://db/player0", "http://ny/person1"), // wrong (LeBron = Kobe)
            ]),
        ),
        (
            "config",
            obj(vec![
                ("partitions", Value::Number(serde_json::Number::U64(1))),
                ("epsilon", Value::Number(serde_json::Number::F64(0.0))),
                ("seed", Value::Number(serde_json::Number::U64(7))),
            ]),
        ),
    ]);
    let (status, v) = http(addr, "POST", "/sessions", Some(&body));
    assert_eq!(status, 201, "session create failed: {v:?}");
    assert_eq!(v.get("candidates").unwrap().as_u64(), Some(2));
    v.get("id").unwrap().as_str().unwrap().to_string()
}

const MVP_QUERY: &str = "SELECT ?article WHERE { \
    ?player <http://db/award> <http://db/NBA_MVP_2013> . \
    ?article <http://ny/about> ?player }";

fn run_query(addr: &str, id: &str) -> Vec<(String, Vec<(String, String)>)> {
    let (status, v) = http(
        addr,
        "POST",
        &format!("/sessions/{id}/query"),
        Some(&obj(vec![("query", s(MVP_QUERY))])),
    );
    assert_eq!(status, 200, "query failed: {v:?}");
    v.get("answers")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|a| {
            let row = a.get("row").unwrap().as_array().unwrap();
            let article = row[0].get("value").unwrap().as_str().unwrap().to_string();
            let links = a
                .get("links")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .map(|p| {
                    let p = p.as_array().unwrap();
                    (
                        p[0].as_str().unwrap().to_string(),
                        p[1].as_str().unwrap().to_string(),
                    )
                })
                .collect();
            (article, links)
        })
        .collect()
}

#[test]
fn figure1_loop_over_tcp_query_feedback_link_change() {
    let (server, addr) = start(local(|_| {}));

    let (status, v) = http(&addr, "GET", "/healthz", None);
    assert_eq!((status, v), (200, Value::String("ok\n".into())));

    let id = create_session(&addr);

    // Both links produce an answer: the correct and the wrong article.
    let answers = run_query(&addr, &id);
    assert_eq!(
        answers.len(),
        2,
        "correct + wrong link each answer: {answers:?}"
    );
    assert!(
        answers.iter().all(|(_, links)| !links.is_empty()),
        "answers carry provenance"
    );

    // The user marks article0 correct, everything else wrong — exactly
    // the provenance links the answers reported.
    let items: Vec<Value> = answers
        .iter()
        .flat_map(|(article, links)| {
            let approve = article.ends_with("article0");
            links.iter().map(move |(l, r)| {
                obj(vec![
                    ("left", s(l)),
                    ("right", s(r)),
                    ("approve", Value::Bool(approve)),
                ])
            })
        })
        .collect();
    let (status, v) = http(
        &addr,
        "POST",
        &format!("/sessions/{id}/feedback"),
        Some(&obj(vec![("items", Value::Array(items))])),
    );
    assert_eq!(status, 200, "feedback failed: {v:?}");
    assert!(
        v.get("links_removed").unwrap().as_u64().unwrap() >= 1,
        "{v:?}"
    );
    // Positive feedback explores around LeBron=LeBron and discovers the
    // other identically-named players.
    assert!(
        v.get("links_added").unwrap().as_u64().unwrap() >= 3,
        "{v:?}"
    );

    // The wrong link is gone from the candidate list.
    let (status, v) = http(&addr, "GET", &format!("/sessions/{id}/links"), None);
    assert_eq!(status, 200);
    let links: Vec<(String, String)> = v
        .get("links")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|p| {
            let p = p.as_array().unwrap();
            (
                p[0].as_str().unwrap().to_string(),
                p[1].as_str().unwrap().to_string(),
            )
        })
        .collect();
    assert!(links.contains(&("http://db/player0".into(), "http://ny/person0".into())));
    assert!(!links.contains(&("http://db/player0".into(), "http://ny/person1".into())));

    // Re-running the query yields only the correct article.
    let answers = run_query(&addr, &id);
    assert!(
        answers
            .iter()
            .all(|(article, _)| article.ends_with("article0")),
        "wrong answers remain: {answers:?}"
    );

    // Metrics saw the traffic.
    let (status, v) = http(&addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    let Value::String(text) = v else {
        panic!("metrics is text")
    };
    assert!(text.contains("alex_sessions_created_total 1"), "{text}");
    assert!(text.contains("alex_queries_total 2"));
    assert!(text.contains("alex_feedback_items_total 2"));
    assert!(
        text.contains("alex_http_requests_total{route=\"/sessions/{id}/query\",status=\"200\"} 2"),
        "{text}"
    );
    assert!(text.contains(
        "alex_http_request_seconds_bucket{route=\"/sessions/{id}/query\",le=\"+Inf\"} 2"
    ));
    assert!(text.contains("alex_http_request_seconds_count{route=\"/sessions/{id}/query\"} 2"));
    assert!(text.contains("alex_connections_total"));

    server.shutdown();
}

#[test]
fn keep_alive_serves_multiple_requests_on_one_connection() {
    let (server, addr) = start(local(|_| {}));
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    for i in 0..3 {
        write!(stream, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        // Read exactly one response (headers + 3-byte body "ok\n").
        let mut buf = Vec::new();
        let mut byte = [0u8; 1];
        while !buf.ends_with(b"\r\n\r\nok\n") {
            let n = stream.read(&mut byte).unwrap();
            assert!(n > 0, "connection closed early on request {i}");
            buf.push(byte[0]);
        }
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200"), "{text}");
        assert!(text.contains("Connection: keep-alive"), "{text}");
    }
    server.shutdown();
}

#[test]
fn saturated_queue_answers_503_and_stalled_requests_408() {
    // One worker, queue of one: a stalled connection occupies the worker,
    // a second fills the queue, the third must be rejected immediately.
    let (server, addr) = start(local(|cfg| {
        cfg.workers = 1;
        cfg.queue_depth = 1;
        cfg.request_timeout = Duration::from_millis(600);
    }));

    let mut stalled_busy = TcpStream::connect(&addr).unwrap();
    write!(stalled_busy, "POST /sessions HTTP/1.1\r\n").unwrap(); // never finished
    std::thread::sleep(Duration::from_millis(150)); // worker picks it up
    let mut stalled_queued = TcpStream::connect(&addr).unwrap();
    write!(stalled_queued, "POST /sessions HTTP/1.1\r\n").unwrap();
    std::thread::sleep(Duration::from_millis(150)); // sits in the queue

    let (status, v) = http(&addr, "GET", "/healthz", None);
    assert_eq!(status, 503, "expected saturation rejection, got {v:?}");
    let Some(error) = v.get("error").and_then(|e| e.as_str()) else {
        panic!("503 carries an error envelope: {v:?}")
    };
    assert!(error.contains("saturated"), "{error}");

    // The stalled in-flight request times out as a 408 and frees the
    // worker; afterwards the server serves normally again.
    stalled_busy
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let (status, _) = read_response(&mut stalled_busy);
    assert_eq!(status, 408);
    stalled_queued
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let (status, _) = read_response(&mut stalled_queued);
    assert_eq!(status, 408);

    let (status, _) = http(&addr, "GET", "/healthz", None);
    assert_eq!(status, 200, "server recovers after drain");

    let (_, v) = http(&addr, "GET", "/metrics", None);
    let Value::String(text) = v else { panic!() };
    assert!(text.contains("alex_connections_rejected_total 1"), "{text}");

    server.shutdown();
}

#[test]
fn graceful_shutdown_persists_restorable_snapshots() {
    let dir = std::env::temp_dir().join(format!("alex-serve-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (server, addr) = start(local(|cfg| cfg.state_dir = Some(dir.clone())));

    let id = create_session(&addr);
    // One feedback episode so the persisted state differs from the input.
    let (status, _) = http(
        &addr,
        "POST",
        &format!("/sessions/{id}/feedback"),
        Some(&obj(vec![(
            "items",
            Value::Array(vec![obj(vec![
                ("left", s("http://db/player0")),
                ("right", s("http://ny/person1")),
                ("approve", Value::Bool(false)),
            ])]),
        )])),
    );
    assert_eq!(status, 200);

    let written = server.shutdown();
    assert_eq!(written.len(), 1);
    let path = written[0].as_ref().expect("snapshot written").clone();
    assert_eq!(path, dir.join(format!("session-{id}.json")));

    // The server is really gone: new connections are refused.
    assert!(
        TcpStream::connect(&addr).is_err(),
        "listener still accepting after shutdown"
    );

    // A fresh process can restore the snapshot against reloaded datasets.
    let snap = SessionSnapshot::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert!(!snap
        .candidates
        .iter()
        .any(|(_, r)| r == "http://ny/person1"));
    let (left_text, right_text) = figure1_world();
    let interner = Interner::new_shared();
    let mut left = Store::new(interner.clone());
    let mut right = Store::new(interner.clone());
    ntriples::read_str(&left_text, &mut left).unwrap();
    ntriples::read_str(&right_text, &mut right).unwrap();
    let driver = snap.restore(&left, &right).expect("snapshot restores");
    assert_eq!(driver.candidate_links().len(), snap.candidates.len());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn protocol_probes_get_clean_errors() {
    let (server, addr) = start(local(|cfg| cfg.request_timeout = Duration::from_secs(2)));

    // Garbage on the socket → 400, connection closed.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(stream, "NOT HTTP AT ALL\r\n\r\n").unwrap();
    let (status, _) = read_response(&mut stream);
    assert_eq!(status, 400);

    // Unknown route → 404; wrong method → 405; bad JSON → 400.
    assert_eq!(http(&addr, "GET", "/nope", None).0, 404);
    assert_eq!(http(&addr, "DELETE", "/healthz", None).0, 405);
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(
        stream,
        "POST /sessions HTTP/1.1\r\nContent-Length: 5\r\nConnection: close\r\n\r\n{{oop"
    )
    .unwrap();
    write!(stream, "s").unwrap();
    let (status, v) = read_response(&mut stream);
    assert_eq!(status, 400, "{v:?}");

    server.shutdown();
}
