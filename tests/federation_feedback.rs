//! Integration: the Figure-1 loop — federated queries over linked data,
//! answer feedback, and ALEX's reaction to it.

use std::collections::HashSet;

use alex::query::FederatedEngine;
use alex::rdf::{Interner, Link, Literal, Store};
use alex::{AlexConfig, ExplorationSpace, PartitionEngine, DEFAULT_MAX_BLOCK};

struct World {
    left: Store,
    right: Store,
    truth: Vec<Link>,
}

/// `n` matched people with unique names; articles in the right dataset.
fn world(n: usize) -> World {
    let interner = Interner::new_shared();
    let mut left = Store::new(interner.clone());
    let mut right = Store::new(interner.clone());
    let name_l = left.intern_iri("http://l/name");
    let topic = left.intern_iri("http://l/topic");
    let name_r = right.intern_iri("http://r/label");
    let about = right.intern_iri("http://r/about");
    let science = left.intern_iri("http://l/Science");
    let mut truth = Vec::new();
    for i in 0..n {
        let l = left.intern_iri(&format!("http://l/person{i}"));
        let r = right.intern_iri(&format!("http://r/person{i}"));
        let nm = format!("researcher number {i}");
        left.insert_literal(l, name_l, Literal::str(&interner, &nm));
        left.insert_iri(l, topic, science);
        right.insert_literal(r, name_r, Literal::str(&interner, &nm));
        let article = right.intern_iri(&format!("http://r/article{i}"));
        right.insert_iri(article, about, r);
        truth.push(Link::new(l, r));
    }
    World { left, right, truth }
}

fn engine(w: &World, initial: &[Link], epsilon: f64) -> PartitionEngine {
    let subjects: Vec<_> = w.left.subjects().collect();
    let cfg = AlexConfig {
        epsilon,
        ..Default::default()
    };
    let space = ExplorationSpace::build(
        &w.left,
        &w.right,
        &subjects,
        &cfg.sim,
        cfg.theta,
        DEFAULT_MAX_BLOCK,
    );
    PartitionEngine::new(space, initial.iter().copied(), cfg, 5)
}

fn query_articles(w: &World, links: Vec<Link>) -> Vec<(String, Vec<Link>)> {
    let mut fed = FederatedEngine::new(vec![("left".into(), &w.left), ("right".into(), &w.right)]);
    fed.add_links(links);
    fed.execute_str(
        "SELECT ?article WHERE { \
           ?p <http://l/topic> <http://l/Science> . \
           ?article <http://r/about> ?p }",
    )
    .unwrap()
    .into_iter()
    .map(|a| {
        (
            w.right
                .iri_str(a.row[0].expect("bound").as_iri().unwrap())
                .to_string(),
            a.links,
        )
    })
    .collect()
}

#[test]
fn answers_scale_with_installed_links() {
    let w = world(5);
    assert_eq!(query_articles(&w, vec![]).len(), 0);
    assert_eq!(query_articles(&w, w.truth[..2].to_vec()).len(), 2);
    assert_eq!(query_articles(&w, w.truth.clone()).len(), 5);
}

#[test]
fn approving_answers_discovers_more_links() {
    let w = world(6);
    let mut eng = engine(&w, &w.truth[..1], 0.0);
    // The user approves the single answer produced by the seed link.
    let answers = query_articles(&w, eng.candidates().iter().collect());
    assert_eq!(answers.len(), 1);
    for (_, links) in answers {
        for link in links {
            eng.process_feedback(link, true);
        }
    }
    eng.end_episode();
    // Exploration around the approved link found sibling pairs; re-running
    // the query returns more answers than before.
    let answers = query_articles(&w, eng.candidates().iter().collect());
    assert!(
        answers.len() > 1,
        "discovery should surface new answers, got {}",
        answers.len()
    );
}

#[test]
fn rejecting_answers_removes_their_links_everywhere() {
    let w = world(4);
    let wrong = Link::new(w.truth[0].left, w.truth[1].right);
    let mut eng = engine(&w, &[w.truth[0], wrong], 0.0);

    let answers = query_articles(&w, eng.candidates().iter().collect());
    // The wrong link produces an article answer about the wrong person.
    let wrong_article = "http://r/article1".to_string();
    assert!(answers.iter().any(|(a, _)| *a == wrong_article));

    for (article, links) in answers {
        let verdict = article != wrong_article;
        for link in links {
            eng.process_feedback(link, verdict);
        }
    }
    eng.end_episode();

    // The wrong link is gone and blacklisted. Note that the wrong *answer*
    // may legitimately reappear: approving article0 triggered exploration,
    // which can discover the TRUE link for person1 — article1 is then a
    // correct answer with different provenance. What must hold is that no
    // answer depends on the rejected link anymore.
    assert!(!eng.candidates().contains(wrong));
    assert!(eng.blacklist().contains(&wrong));
    for (_, links) in query_articles(&w, eng.candidates().iter().collect()) {
        assert!(
            !links.contains(&wrong),
            "no answer may use the rejected link"
        );
    }
}

#[test]
fn feedback_loop_converges_to_truth() {
    // Drive the loop for several rounds: query, judge answers against the
    // ground truth, feed back, repeat. The candidate set should converge to
    // exactly the true links.
    let w = world(8);
    let truth: HashSet<Link> = w.truth.iter().copied().collect();
    let mut eng = engine(&w, &w.truth[..1], 0.1);

    for _round in 0..10 {
        let candidates: Vec<Link> = eng.candidates().iter().collect();
        let mut fed =
            FederatedEngine::new(vec![("left".into(), &w.left), ("right".into(), &w.right)]);
        fed.add_links(candidates);
        let answers = fed
            .execute_str(
                "SELECT ?article WHERE { \
                   ?p <http://l/topic> <http://l/Science> . \
                   ?article <http://r/about> ?p }",
            )
            .unwrap();
        for a in answers {
            // The user recognizes an answer as correct iff every link it
            // used is a true link.
            let verdict = a.links.iter().all(|l| truth.contains(l));
            for link in a.links {
                eng.process_feedback(link, verdict);
            }
        }
        eng.end_episode();
    }

    let finals: HashSet<Link> = eng.candidates().to_set();
    let correct = finals.intersection(&truth).count();
    assert!(
        correct >= 7,
        "should find nearly all true links, got {correct}/8"
    );
    let wrong = finals.difference(&truth).count();
    assert!(wrong <= 1, "wrong links should be cleaned up, got {wrong}");
}

#[test]
fn provenance_is_minimal_per_answer() {
    // Answers using one link report exactly that link, not the whole set.
    let w = world(3);
    let mut fed = FederatedEngine::new(vec![("left".into(), &w.left), ("right".into(), &w.right)]);
    fed.add_links(w.truth.clone());
    let answers = fed
        .execute_str(
            "SELECT ?article WHERE { \
               ?p <http://l/topic> <http://l/Science> . \
               ?article <http://r/about> ?p }",
        )
        .unwrap();
    assert_eq!(answers.len(), 3);
    for a in &answers {
        assert_eq!(a.links.len(), 1, "one hop needs one link: {a:?}");
    }
}
