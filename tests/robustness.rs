//! Integration: robustness and optimization ablations (paper §6, §7.3,
//! Appendix C).

use alex::datagen::{self, degrade, PaperPair};
use alex::{AlexConfig, AlexDriver, ExactOracle, NoisyOracle, ReluctantOracle};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup(
    kind: PaperPair,
    scale: f64,
    tweak: impl FnOnce(&mut AlexConfig),
) -> (datagen::GeneratedPair, Vec<alex::rdf::Link>, AlexConfig) {
    let pair = datagen::generate(&kind.spec(scale, 17));
    let (p0, r0) = kind.initial_quality();
    let mut rng = StdRng::seed_from_u64(alex_rdf::test_seed(3));
    let initial = degrade(&pair.truth, p0, r0, &mut rng);
    let mut cfg = AlexConfig {
        episode_size: kind.suggested_episode_size(scale),
        partitions: 4,
        ..Default::default()
    };
    tweak(&mut cfg);
    (pair, initial, cfg)
}

#[test]
fn noisy_feedback_preserves_recall() {
    // Appendix C: with 10% incorrect feedback (and corroboration-based
    // blacklisting) recall barely moves.
    let (pair, initial, cfg) = setup(PaperPair::DbpediaNytimes, 0.4, |c| {
        c.max_episodes = 15;
        c.blacklist_threshold = 2;
    });
    let clean = {
        let mut d = AlexDriver::new(&pair.left, &pair.right, &initial, cfg.clone()).unwrap();
        d.run(&ExactOracle::new(pair.truth.clone()), &pair.truth)
    };
    let noisy = {
        let mut d = AlexDriver::new(&pair.left, &pair.right, &initial, cfg).unwrap();
        let oracle = NoisyOracle::new(ExactOracle::new(pair.truth.clone()), 0.10);
        d.run(&oracle, &pair.truth)
    };
    let rc = clean.final_quality().recall;
    let rn = noisy.final_quality().recall;
    assert!(
        rn > rc - 0.2,
        "noisy recall {rn} should stay near clean recall {rc}"
    );
    assert!(rn > 0.6, "noisy recall should stay substantial, got {rn}");
}

#[test]
fn reluctant_users_just_slow_things_down() {
    // §3.2: users may skip feedback; ALEX still improves, only slower.
    let (pair, initial, cfg) = setup(PaperPair::OpencycNytimes, 0.6, |c| c.max_episodes = 40);
    let mut d = AlexDriver::new(&pair.left, &pair.right, &initial, cfg).unwrap();
    let oracle = ReluctantOracle::new(ExactOracle::new(pair.truth.clone()), 0.5);
    let out = d.run(&oracle, &pair.truth);
    assert!(
        out.final_quality().f1 > out.reports[0].quality.f1,
        "quality should still improve with 50% response rate"
    );
}

#[test]
fn blacklist_ablation_slows_convergence() {
    let (pair, initial, with_cfg) = setup(PaperPair::OpencycDrugbank, 1.0, |_| {});
    let (.., without_cfg) = setup(PaperPair::OpencycDrugbank, 1.0, |c| c.blacklist = false);

    let episodes = |cfg: AlexConfig| {
        let mut d = AlexDriver::new(&pair.left, &pair.right, &initial, cfg).unwrap();
        let out = d.run(&ExactOracle::new(pair.truth.clone()), &pair.truth);
        (out.reports.len(), out.final_quality())
    };
    let (with_eps, with_q) = episodes(with_cfg);
    let (without_eps, without_q) = episodes(without_cfg);

    // Both reach good quality; the blacklist variant never does *worse* on
    // episode count (removed links cannot be re-explored and re-judged).
    assert!(with_q.f1 > 0.85, "{with_q:?}");
    assert!(without_q.f1 > 0.7, "{without_q:?}");
    assert!(
        with_eps <= without_eps + 2,
        "blacklist should not slow convergence: {with_eps} vs {without_eps}"
    );
}

#[test]
fn harsher_negative_rewards_still_converge() {
    // §4.3: "we can severely penalize wrong links" — the reward asymmetry
    // knob must not break learning.
    let (pair, initial, cfg) = setup(PaperPair::OpencycNbaNytimes, 1.0, |c| {
        c.negative_reward = -3.0;
    });
    let mut d = AlexDriver::new(&pair.left, &pair.right, &initial, cfg).unwrap();
    let out = d.run(&ExactOracle::new(pair.truth.clone()), &pair.truth);
    assert!(out.final_quality().f1 > 0.8, "{:?}", out.final_quality());
}

#[test]
fn step_size_monotonicity_in_discovery() {
    // Appendix D, Figure 10(b): a larger step size discovers at least as
    // many links early on.
    let recall_after_two_episodes = |step: f64| {
        let (pair, initial, cfg) = setup(PaperPair::DbpediaNytimes, 0.4, |c| {
            c.step_size = step;
            c.max_episodes = 2;
        });
        let mut d = AlexDriver::new(&pair.left, &pair.right, &initial, cfg).unwrap();
        let out = d.run(&ExactOracle::new(pair.truth.clone()), &pair.truth);
        out.final_quality().recall
    };
    let small = recall_after_two_episodes(0.01);
    let large = recall_after_two_episodes(0.10);
    assert!(
        large >= small - 0.05,
        "larger steps should not discover materially less: {small} vs {large}"
    );
}

#[test]
fn relaxed_stop_trades_quality_for_episodes() {
    let (pair, initial, cfg) = setup(PaperPair::DbpediaLexvo, 1.0, |c| c.stop_at_relaxed = true);
    let mut d = AlexDriver::new(&pair.left, &pair.right, &initial, cfg.clone()).unwrap();
    let relaxed = d.run(&ExactOracle::new(pair.truth.clone()), &pair.truth);

    let strict_cfg = AlexConfig {
        stop_at_relaxed: false,
        ..cfg
    };
    let mut d = AlexDriver::new(&pair.left, &pair.right, &initial, strict_cfg).unwrap();
    let strict = d.run(&ExactOracle::new(pair.truth.clone()), &pair.truth);

    assert!(relaxed.reports.len() <= strict.reports.len());
    // The relaxed stop still lands close to the strict-run quality.
    assert!(relaxed.final_quality().f1 > strict.final_quality().f1 - 0.25);
}
